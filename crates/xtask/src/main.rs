use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p cliz-xtask -- lint [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "lint" {
        eprintln!("unknown command `{cmd}`");
        return usage();
    }
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            other => {
                eprintln!("unknown option `{other}`");
                return usage();
            }
        }
    }
    // When invoked through cargo, resolve the workspace root rather than
    // whatever directory the user happens to be in.
    if root.as_os_str() == "." {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let xtask = PathBuf::from(manifest);
            if let Some(ws) = xtask.parent().and_then(|p| p.parent()) {
                root = ws.to_path_buf();
            }
        }
    }

    let report = match cliz_xtask::lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{} {}:{} — {}", v.rule, v.file, v.line, v.message);
    }
    println!(
        "xtask lint: {} violation(s), {} suppressed, {} file(s) scanned",
        report.violations.len(),
        report.suppressed,
        report.files_scanned
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
