use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p cliz-xtask -- lint [--root <dir>] \
         [--format text|json|sarif] [--baseline <file>] [--write-baseline] \
         [--explain R<N>]"
    );
    ExitCode::from(2)
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "lint" {
        eprintln!("unknown command `{cmd}`");
        return usage();
    }
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => return usage(),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--write-baseline" => write_baseline = true,
            "--explain" => {
                let Some(rule) = args.next() else {
                    return usage();
                };
                match cliz_xtask::describe_rule(&rule) {
                    Some(desc) => {
                        println!("{rule}: {desc}");
                        println!("See docs/STATIC_ANALYSIS.md for the full rule description,");
                        println!("fix guidance, and the suppression syntax");
                        println!("(`// xtask-allow: {rule} -- reason`).");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "unknown rule `{rule}`; known rules: {}",
                            cliz_xtask::ALL_RULES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown option `{other}`");
                return usage();
            }
        }
    }
    // When invoked through cargo, resolve the workspace root rather than
    // whatever directory the user happens to be in.
    if root.as_os_str() == "." {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let xtask = PathBuf::from(manifest);
            if let Some(ws) = xtask.parent().and_then(|p| p.parent()) {
                root = ws.to_path_buf();
            }
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("xtask-baseline.json"));

    let report = match cliz_xtask::lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let base = cliz_xtask::baseline_from_report(&report);
        let text = cliz_xtask::baseline_to_json(&base);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "xtask lint: wrote baseline ({} entr{}) to {}",
            base.entries.len(),
            if base.entries.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Load the ratchet baseline when present; a malformed one is a hard
    // error (it must never silently allow regressions).
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match cliz_xtask::parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "xtask lint: malformed baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(_) => cliz_xtask::Baseline::default(),
    };
    let outcome = cliz_xtask::ratchet(&report, &baseline);

    // Machine-readable formats go to stdout; the human summary to stderr.
    match format {
        Format::Text => {
            for v in &report.violations {
                println!("{} {}:{} — {}", v.rule, v.file, v.line, v.message);
            }
        }
        Format::Json => print!("{}", cliz_xtask::to_json(&report)),
        Format::Sarif => print!("{}", cliz_xtask::to_sarif(&report)),
    }
    let summary = format!(
        "xtask lint: {} violation(s), {} suppressed, {} file(s) scanned",
        report.violations.len(),
        report.suppressed,
        report.files_scanned
    );
    if format == Format::Text {
        println!("{summary}");
    } else {
        eprintln!("{summary}");
    }
    for (rule, file, current, allowed) in &outcome.regressions {
        eprintln!(
            "xtask lint: ratchet regression: {rule} in {file}: {current} finding(s), \
             baseline allows {allowed}"
        );
    }
    for (rule, file, current, allowed) in &outcome.stale {
        eprintln!(
            "xtask lint: baseline stale: {rule} in {file} is down to {current} \
             (baseline {allowed}) — shrink it with --write-baseline"
        );
    }
    if outcome.known > 0 {
        eprintln!(
            "xtask lint: {} finding(s) tolerated by {}",
            outcome.known,
            baseline_path.display()
        );
    }

    if outcome.is_regression() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
