//! Output formats and the violation ratchet.
//!
//! `to_json`/`to_sarif` render a [`Report`](crate::Report) for CI
//! annotation (SARIF 2.1.0, minimal subset). The ratchet compares current
//! findings against a committed baseline (`xtask-baseline.json`): per
//! `(rule, file)` pair the finding count may only shrink — anything above
//! the baseline, or in a file the baseline has never seen, fails the run.
//! Everything is hand-rolled (no serde): the crate must build with a bare
//! toolchain when the registry is unreachable.

use crate::Report;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a plain JSON document.
pub fn to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(v.rule),
            esc(&v.file),
            v.line,
            esc(&v.message)
        );
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    let _ = write!(
        s,
        "],\n  \"files_scanned\": {},\n  \"suppressed\": {}\n}}\n",
        report.files_scanned, report.suppressed
    );
    s
}

/// Short per-rule descriptions, embedded in the SARIF tool metadata.
const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    ("R0", "malformed xtask-allow suppression"),
    ("R1", "panicking construct in decode-facing code"),
    ("R2", "bare narrowing integer cast in a hot path"),
    ("R3", "public codec entry point must return Result"),
    ("R4", "quantizer boundary lacks its debug_assert invariant hook"),
    ("R5", "panic reachable from decode-tainted input (call-graph pass)"),
    ("R6", "bare float<->int or f64->f32 cast; use cliz_core::cast helpers"),
    ("R7", "unchecked arithmetic/slice/allocation sized by an untrusted length (dataflow pass)"),
    ("R8", "Compressor impl lacks bound-asserting roundtrip test, or eb scaled outside a named helper"),
    ("R9", "lock-discipline hazard: guard held across expensive work, double acquisition, or lock-order cycle (workspace pass)"),
    ("R10", "shared-state hazard: static mut, unsafe impl Send/Sync, mismatched atomic orderings, bare counter in a Sync type, or escaping interior mutability (workspace pass)"),
    ("R11", "heap allocation inside a loop reachable from a codec entry point (workspace pass)"),
    ("R12", "single-bit BitReader/BitWriter call in a loop; use word-at-a-time I/O (workspace pass)"),
    ("R13", "vectorization-hostile loop: per-element indexing mixed with a per-iteration mask test (workspace pass)"),
    ("R14", "serializer/parser asymmetry: format written but not read (or vice versa), field width/order mismatch, or unchecked trailer magic (workspace pass)"),
    ("R15", "version discipline: parser lacks an UnsupportedVersion range check before length fields, or a magic constant lives outside the cliz-format registry (workspace pass)"),
    ("R16", "parser error-surface gap: dead error variant, parser-constructed variant without a test assertion, or unreachable from any decode entry point (workspace pass)"),
];

/// The one-line description of a rule, for `lint --explain`.
pub fn describe_rule(rule: &str) -> Option<&'static str> {
    RULE_DESCRIPTIONS
        .iter()
        .find(|(id, _)| *id == rule)
        .map(|(_, d)| *d)
}

/// Renders the report as a minimal SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [{\n");
    s.push_str("    \"tool\": {\"driver\": {\"name\": \"cliz-xtask\", \"rules\": [");
    for (i, (id, desc)) in RULE_DESCRIPTIONS.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n      {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(desc)
        );
    }
    s.push_str("\n    ]}},\n");
    s.push_str("    \"results\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n      {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            esc(v.rule),
            esc(&v.message),
            esc(&v.file),
            v.line
        );
    }
    if !report.violations.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("]\n  }]\n}\n");
    s
}

/// The committed baseline: per-(rule, file) finding counts that are known
/// and tolerated while they are burned down.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Keyed `(rule, file)` → allowed count, sorted by key.
    pub entries: BTreeMap<(String, String), usize>,
}

/// Builds a baseline that exactly covers the report's current findings.
pub fn baseline_from_report(report: &Report) -> Baseline {
    let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &report.violations {
        *entries
            .entry((v.rule.to_string(), v.file.clone()))
            .or_insert(0) += 1;
    }
    Baseline { entries }
}

/// Serializes a baseline as the committed `xtask-baseline.json` format.
pub fn baseline_to_json(b: &Baseline) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": 1,\n  \"entries\": [");
    for (i, ((rule, file), count)) in b.entries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"count\": {}}}",
            esc(rule),
            esc(file),
            count
        );
    }
    if !b.entries.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Parses `xtask-baseline.json`. The grammar is the fixed schema written by
/// [`baseline_to_json`]; anything else is an error (a malformed ratchet
/// file must fail CI loudly, not silently allow regressions).
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut p = JsonParser::new(text);
    let mut baseline = Baseline::default();
    p.expect('{')?;
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "version" => {
                let v = p.number()?;
                if v != 1 {
                    return Err(format!("unsupported baseline version {v}"));
                }
            }
            "entries" => {
                p.expect('[')?;
                if p.peek() == Some(']') {
                    p.expect(']')?;
                } else {
                    loop {
                        let (mut rule, mut file, mut count) = (None, None, None);
                        p.expect('{')?;
                        loop {
                            let k = p.string()?;
                            p.expect(':')?;
                            match k.as_str() {
                                "rule" => rule = Some(p.string()?),
                                "file" => file = Some(p.string()?),
                                "count" => count = Some(p.number()?),
                                other => return Err(format!("unknown entry key `{other}`")),
                            }
                            if !p.comma_or_close('}')? {
                                break;
                            }
                        }
                        let (rule, file, count) = match (rule, file, count) {
                            (Some(r), Some(f), Some(c)) => (r, f, c),
                            _ => return Err("entry missing rule/file/count".to_string()),
                        };
                        baseline.entries.insert((rule, file), count as usize);
                        if !p.comma_or_close(']')? {
                            break;
                        }
                    }
                }
            }
            other => return Err(format!("unknown baseline key `{other}`")),
        }
        if !p.comma_or_close('}')? {
            break;
        }
    }
    Ok(baseline)
}

/// Outcome of comparing a report to the committed baseline.
#[derive(Debug, Default)]
pub struct RatchetOutcome {
    /// `(rule, file, current, allowed)` for every group over its budget.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// Baseline entries that are now over-provisioned (current < allowed):
    /// the baseline should be shrunk, but this does not fail the run.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Findings covered by the baseline (tolerated, not failing).
    pub known: usize,
}

impl RatchetOutcome {
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Applies the ratchet: per (rule, file), current count must not exceed the
/// baseline count; unknown (rule, file) pairs have a budget of zero.
pub fn ratchet(report: &Report, baseline: &Baseline) -> RatchetOutcome {
    let current = baseline_from_report(report);
    let mut out = RatchetOutcome::default();
    for (key, &count) in &current.entries {
        let allowed = baseline.entries.get(key).copied().unwrap_or(0);
        if count > allowed {
            out.regressions
                .push((key.0.clone(), key.1.clone(), count, allowed));
        } else {
            out.known += count;
            if count < allowed {
                out.stale.push((key.0.clone(), key.1.clone(), count, allowed));
            }
        }
    }
    for (key, &allowed) in &baseline.entries {
        if !current.entries.contains_key(key) {
            out.stale.push((key.0.clone(), key.1.clone(), 0, allowed));
        }
    }
    out
}

/// Minimal JSON tokenizer for the baseline schema.
struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            b: text.as_bytes(),
            i: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && (self.b[self.i] as char).is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.b.get(self.i).map(|&c| c as char)
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.b.get(self.i).map(|&b| b as char) == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at byte {}", self.i))
        }
    }

    /// After a value: `,` continues the container, `close` ends it.
    fn comma_or_close(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        match self.b.get(self.i).map(|&b| b as char) {
            Some(',') => {
                self.i += 1;
                Ok(true)
            }
            Some(c) if c == close => {
                self.i += 1;
                Ok(false)
            }
            _ => Err(format!("expected `,` or `{close}` at byte {}", self.i)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.b.get(self.i).copied().ok_or("truncated escape")?;
                    self.i += 1;
                    out.push(match e {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    });
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "bad number".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileViolation;

    fn report_with(violations: Vec<(&'static str, &str, usize)>) -> Report {
        Report {
            violations: violations
                .into_iter()
                .map(|(rule, file, line)| FileViolation {
                    file: file.to_string(),
                    rule,
                    line,
                    message: format!("{rule} finding"),
                })
                .collect(),
            files_scanned: 1,
            suppressed: 0,
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let report = report_with(vec![
            ("R5", "crates/a/src/lib.rs", 3),
            ("R5", "crates/a/src/lib.rs", 9),
            ("R6", "crates/b/src/lib.rs", 1),
        ]);
        let base = baseline_from_report(&report);
        let text = baseline_to_json(&base);
        let back = parse_baseline(&text).expect("parse");
        assert_eq!(back, base);
        assert_eq!(
            back.entries
                .get(&("R5".to_string(), "crates/a/src/lib.rs".to_string())),
            Some(&2)
        );
    }

    #[test]
    fn empty_baseline_roundtrips() {
        let base = Baseline::default();
        let back = parse_baseline(&baseline_to_json(&base)).expect("parse");
        assert_eq!(back, base);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse_baseline("{\"version\": 2, \"entries\": []}").is_err());
        assert!(parse_baseline("{\"entries\": [{\"rule\": \"R5\"}]}").is_err());
        assert!(parse_baseline("not json").is_err());
    }

    #[test]
    fn ratchet_flags_growth_and_tolerates_known() {
        let baseline =
            parse_baseline("{\"version\": 1, \"entries\": [{\"rule\": \"R5\", \"file\": \"crates/a/src/lib.rs\", \"count\": 1}]}")
                .expect("parse");
        // Same count: tolerated.
        let same = ratchet(&report_with(vec![("R5", "crates/a/src/lib.rs", 3)]), &baseline);
        assert!(!same.is_regression());
        assert_eq!(same.known, 1);
        // Growth in a known file: regression.
        let grown = ratchet(
            &report_with(vec![
                ("R5", "crates/a/src/lib.rs", 3),
                ("R5", "crates/a/src/lib.rs", 8),
            ]),
            &baseline,
        );
        assert!(grown.is_regression());
        assert_eq!(grown.regressions[0].2, 2);
        assert_eq!(grown.regressions[0].3, 1);
        // New file not in the baseline: regression.
        let new_file = ratchet(&report_with(vec![("R5", "crates/z/src/lib.rs", 1)]), &baseline);
        assert!(new_file.is_regression());
    }

    #[test]
    fn ratchet_shrink_passes_and_reports_stale() {
        let baseline =
            parse_baseline("{\"version\": 1, \"entries\": [{\"rule\": \"R5\", \"file\": \"crates/a/src/lib.rs\", \"count\": 2}]}")
                .expect("parse");
        let shrunk = ratchet(&report_with(vec![("R5", "crates/a/src/lib.rs", 3)]), &baseline);
        assert!(!shrunk.is_regression());
        assert_eq!(shrunk.stale.len(), 1);
        let cleared = ratchet(&report_with(vec![]), &baseline);
        assert!(!cleared.is_regression());
        assert_eq!(cleared.stale.len(), 1);
        assert_eq!(cleared.stale[0].2, 0);
    }

    #[test]
    fn json_and_sarif_render_findings() {
        let report = report_with(vec![("R5", "crates/a/src/lib.rs", 3)]);
        let json = to_json(&report);
        assert!(json.contains("\"rule\": \"R5\""));
        assert!(json.contains("\"line\": 3"));
        let sarif = to_sarif(&report);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"R5\""));
        assert!(sarif.contains("\"startLine\": 3"));
        assert!(sarif.contains("cliz-xtask"));
    }
}
