//! Lightweight `fn`-item parser on top of the lexer.
//!
//! This is deliberately *not* a Rust parser. It walks lexed code (comments,
//! strings and test items already blanked) and extracts just enough
//! structure for the call-graph passes: every `fn` item (free functions,
//! inherent/trait methods and default trait bodies alike), the call sites
//! inside each body, and the potentially-panicking constructs inside each
//! body. Nested `fn` items are parsed as their own entries and their byte
//! ranges are excluded from the enclosing body's scan, so every call and
//! hazard is attributed to exactly one function. Closures belong to the
//! function that contains them.

use crate::lexer::{
    ident_at, ident_ending_at, ident_starts_at, is_ident, match_brace, next_nonws, prev_nonws,
    Lines,
};

/// A call site inside a function body. Resolution is by bare callee name
/// (`reader.block()` and `block(..)` both record `block`); paths record only
/// the final segment (`cast::u32_le(..)` records `u32_le`).
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: String,
    pub line: usize,
    pub is_method: bool,
}

/// A potentially-panicking construct inside a function body: the same
/// hazard set rule R1 checks per-file, collected here for the whole
/// workspace so the taint pass (R5) can test reachability.
#[derive(Debug, Clone)]
pub struct Hazard {
    pub line: usize,
    /// Short construct description, e.g. ``"`.unwrap()`"`` or
    /// ``"indexing `buf[..]`"``; rule messages are built from this.
    pub construct: String,
}

/// One parsed `fn` item.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Name of the type whose `impl` block encloses this item (`impl Foo`
    /// and `impl Trait for Foo` both record `Foo`); `None` for free
    /// functions. The concurrency passes use this for receiver-typed call
    /// resolution, which is far less prone to name collisions than the
    /// bare-name call graph.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte offset of the `fn` keyword in the lexed code.
    pub start: usize,
    /// Byte offset of the item's closing `}` (or its `;` for a bodyless
    /// trait-method declaration).
    pub end: usize,
    /// Byte offset of the body's `{` (== `end` when there is no body);
    /// calls and hazards are scanned from here so the signature itself is
    /// never mistaken for a call.
    pub body_open: usize,
    pub has_body: bool,
    pub calls: Vec<Call>,
    pub hazards: Vec<Hazard>,
}

/// Identifier names treated as decoder input buffers for the indexing
/// hazard, mirroring rule R1. Field accesses (`self.data[..]`) are exempt:
/// struct state is the owning type's invariant, not a raw input slice.
const INPUT_NAMES: &[&str] = &["bytes", "buf", "data", "input", "payload", "src"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can syntactically precede `(` without being a call.
pub(crate) const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "in", "as", "ref",
    "mut", "move", "unsafe", "where", "impl", "pub", "use", "mod", "struct", "enum", "trait",
    "type", "const", "static", "break", "continue", "dyn", "crate", "super", "self", "Self",
    "async", "await", "box", "yield",
];

/// An `impl` block's byte range and the implemented type's name.
struct ImplBlock {
    open: usize,
    close: usize,
    owner: String,
}

/// Locates every `impl` *item* (not `impl Trait` in type position) and the
/// name of the type it implements: the last type-path head identifier seen
/// at angle-bracket depth 0 before the block brace, restarted by `for`
/// (`impl fmt::Display for ChunkCache` records `ChunkCache`) and frozen by
/// `where`.
fn parse_impls(b: &[u8]) -> Vec<ImplBlock> {
    let mut impls = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        let start = i;
        i += word.len();
        if word != "impl" {
            continue;
        }
        // An impl item can only follow the start of file, a block boundary,
        // a `;`, an attribute's `]`, or the `unsafe` keyword; anything else
        // (`-> impl Iterator`, `(impl Fn(..))`) is `impl Trait` in type
        // position.
        let item_position = match prev_nonws(b, start) {
            None => true,
            Some((j, c)) => {
                c == b'{'
                    || c == b'}'
                    || c == b';'
                    || c == b']'
                    || (is_ident(c) && ident_ending_at(b, j + 1) == "unsafe")
            }
        };
        if !item_position {
            continue;
        }
        let mut angle = 0isize;
        let mut head: Option<String> = None;
        let mut frozen = false;
        let mut j = i;
        while j < b.len() {
            let c = b[j];
            if ident_starts_at(b, j) {
                let w = ident_at(b, j);
                if angle == 0 {
                    if w == "for" {
                        head = None;
                    } else if w == "where" {
                        frozen = true;
                    } else if !frozen {
                        head = Some(w.to_string());
                    }
                }
                j += w.len();
                continue;
            }
            match c {
                b'<' => angle += 1,
                b'>' if j > 0 && b[j - 1] != b'-' => angle = (angle - 1).max(0),
                b'{' | b';' => break,
                _ => {}
            }
            j += 1;
        }
        if j < b.len() && b[j] == b'{' {
            if let Some(owner) = head {
                impls.push(ImplBlock {
                    open: j,
                    close: match_brace(b, j),
                    owner,
                });
            }
        }
    }
    impls
}

/// Parses every `fn` item out of lexed, test-blanked code.
pub fn parse_items(active: &str, lines: &Lines) -> Vec<FnItem> {
    let b = active.as_bytes();
    let impls = parse_impls(b);
    let mut items = Vec::new();

    // Pass 1: locate every `fn` declaration and its body span.
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        let start = i;
        i += word.len();
        if word != "fn" {
            continue;
        }
        // `fn` must be followed by a name (skips `fn(..)` pointer types).
        let Some((j, c)) = next_nonws(b, i) else {
            continue;
        };
        if !is_ident(c) || c.is_ascii_digit() {
            continue;
        }
        let name = ident_at(b, j).to_string();
        // Scan to the body brace or the `;` terminator, at paren depth 0
        // (parameter lists and generics cannot contain braces).
        let mut k = j + name.len();
        let mut paren = 0isize;
        let mut body_open = None;
        while k < b.len() {
            match b[k] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => {
                    body_open = Some(k);
                    break;
                }
                b';' if paren == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let (end, body_open, has_body) = match body_open {
            Some(open) => (match_brace(b, open), open, true),
            None => {
                let e = k.min(b.len().saturating_sub(1));
                (e, e, false)
            }
        };
        let owner = impls
            .iter()
            .filter(|im| im.open < start && end <= im.close)
            .min_by_key(|im| im.close - im.open)
            .map(|im| im.owner.clone());
        items.push(FnItem {
            name,
            owner,
            line: lines.line_of(start),
            start,
            end,
            body_open,
            has_body,
            calls: Vec::new(),
            hazards: Vec::new(),
        });
        // Continue scanning *inside* the item: nested fns become their own
        // entries; pass 2 carves their ranges out of this body.
    }

    // Pass 2: collect calls and hazards per body, excluding nested items.
    for idx in 0..items.len() {
        if !items[idx].has_body {
            continue;
        }
        let (lo, hi) = (items[idx].body_open + 1, items[idx].end);
        // Ranges of items nested strictly inside this one.
        let nested: Vec<(usize, usize)> = items
            .iter()
            .filter(|it| it.start > lo && it.end <= hi)
            .map(|it| (it.start, it.end))
            .collect();
        let (calls, hazards) = scan_body(b, lines, lo, hi, &nested);
        items[idx].calls = calls;
        items[idx].hazards = hazards;
    }
    items
}

fn scan_body(
    b: &[u8],
    lines: &Lines,
    lo: usize,
    hi: usize,
    nested: &[(usize, usize)],
) -> (Vec<Call>, Vec<Hazard>) {
    let mut calls = Vec::new();
    let mut hazards = Vec::new();
    let mut i = lo;
    'outer: while i <= hi && i < b.len() {
        for &(ns, ne) in nested {
            if i >= ns && i <= ne {
                i = ne + 1;
                continue 'outer;
            }
        }
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        let start = i;
        i += word.len();
        let line = lines.line_of(start);
        let next = next_nonws(b, i);
        let prev = prev_nonws(b, start);

        // Panicking macros, then other macros (not calls).
        if next.is_some_and(|(_, c)| c == b'!') {
            if PANIC_MACROS.contains(&word) {
                hazards.push(Hazard {
                    line,
                    construct: format!("`{word}!`"),
                });
            }
            continue;
        }
        // `.unwrap()` / `.expect(..)` hazards.
        if (word == "unwrap" || word == "expect")
            && prev.is_some_and(|(_, c)| c == b'.')
            && next.is_some_and(|(_, c)| c == b'(')
        {
            hazards.push(Hazard {
                line,
                construct: format!("`.{word}(..)`"),
            });
            continue;
        }
        // Direct indexing of a decoder input buffer (field accesses exempt).
        if INPUT_NAMES.contains(&word)
            && next.is_some_and(|(_, c)| c == b'[')
            && !prev.is_some_and(|(_, c)| c == b'.')
        {
            hazards.push(Hazard {
                line,
                construct: format!("indexing `{word}[..]`"),
            });
            continue;
        }
        // Call site: identifier directly applied to an argument list.
        if next.is_some_and(|(_, c)| c == b'(') && !NON_CALL_KEYWORDS.contains(&word) {
            calls.push(Call {
                callee: word.to_string(),
                line,
                is_method: prev.is_some_and(|(_, c)| c == b'.'),
            });
        }
    }
    (calls, hazards)
}

/// A named struct field: `struct S { name: Ty }`. Tuple and unit structs
/// are skipped — the concurrency passes only care about named lock,
/// atomic, and counter fields.
#[derive(Debug)]
pub struct FieldDecl {
    pub struct_name: String,
    pub name: String,
    /// The declared type, verbatim (whitespace-trimmed).
    pub ty: String,
    pub line: usize,
}

/// Parses every named-struct field out of lexed, test-blanked code.
pub fn parse_fields(active: &str, lines: &Lines) -> Vec<FieldDecl> {
    let b = active.as_bytes();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        i += word.len();
        if word != "struct" {
            continue;
        }
        let Some((j, c)) = next_nonws(b, i) else {
            continue;
        };
        if !is_ident(c) || c.is_ascii_digit() {
            continue;
        }
        let struct_name = ident_at(b, j).to_string();
        // Find the field block `{`, skipping generics; `(` (tuple struct)
        // or `;` (unit struct) ends the search.
        let mut k = j + struct_name.len();
        let mut angle = 0isize;
        let mut open = None;
        while k < b.len() {
            match b[k] {
                b'<' => angle += 1,
                b'>' if b[k - 1] != b'-' => angle = (angle - 1).max(0),
                b'{' if angle == 0 => {
                    open = Some(k);
                    break;
                }
                b'(' | b';' if angle == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else { continue };
        let close = match_brace(b, open);
        // Split the body on commas at nesting depth 0; each segment is one
        // field declaration (possibly with attributes/visibility).
        let mut seg_start = open + 1;
        let mut depth = 0isize;
        let mut angle = 0isize;
        let mut m = open + 1;
        while m <= close && m < b.len() {
            let c = b[m];
            let boundary = m == close || (c == b',' && depth == 0 && angle == 0);
            if boundary {
                push_field(&mut fields, &struct_name, active, seg_start, m, lines);
                seg_start = m + 1;
            } else {
                match c {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => depth -= 1,
                    b'<' => angle += 1,
                    b'>' if b[m - 1] != b'-' => angle = (angle - 1).max(0),
                    _ => {}
                }
            }
            m += 1;
        }
    }
    fields
}

fn push_field(
    fields: &mut Vec<FieldDecl>,
    struct_name: &str,
    active: &str,
    seg_start: usize,
    seg_end: usize,
    lines: &Lines,
) {
    let b = active.as_bytes();
    // First `:` outside brackets that is not part of `::` separates the
    // field name from its type (skips `pub(in a::b)` path visibility).
    let mut depth = 0isize;
    let mut m = seg_start;
    while m < seg_end {
        match b[m] {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' => depth -= 1,
            b'>' if b[m - 1] != b'-' => depth = (depth - 1).max(0),
            b':' if depth == 0 => {
                if m + 1 < b.len() && b[m + 1] == b':' {
                    m += 2;
                    continue;
                }
                let Some((p, c)) = prev_nonws(b, m) else { return };
                if !is_ident(c) {
                    return;
                }
                let name = ident_ending_at(b, p + 1).to_string();
                let ty = active[m + 1..seg_end].trim().to_string();
                if name.is_empty() || ty.is_empty() {
                    return;
                }
                fields.push(FieldDecl {
                    struct_name: struct_name.to_string(),
                    name,
                    ty,
                    line: lines.line_of(m),
                });
                return;
            }
            _ => {}
        }
        m += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> Vec<FnItem> {
        let lexed = lexer::strip(src);
        let active = lexer::blank_test_items(&lexed.code);
        let lines = Lines::new(&active);
        parse_items(&active, &lines)
    }

    #[test]
    fn finds_functions_and_calls() {
        let src = "fn outer(x: usize) -> usize {\n    helper(x) + obj.method(1)\n}\n\
                   fn helper(x: usize) -> usize { x }\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "outer");
        let callees: Vec<&str> = items[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, vec!["helper", "method"]);
        assert!(items[0].calls[1].is_method);
        assert!(items[1].calls.is_empty());
    }

    #[test]
    fn hazards_collected_with_lines() {
        let src = "fn f(buf: &[u8]) -> u8 {\n    let a = buf[0];\n    let b = x.unwrap();\n    panic!(\"no\")\n}\n";
        let items = parse(src);
        let h: Vec<(usize, &str)> = items[0]
            .hazards
            .iter()
            .map(|h| (h.line, h.construct.as_str()))
            .collect();
        assert_eq!(
            h,
            vec![(2, "indexing `buf[..]`"), (3, "`.unwrap(..)`"), (4, "`panic!`")]
        );
    }

    #[test]
    fn field_access_indexing_is_exempt() {
        let src = "fn f(&self) -> f32 { self.data[3] }\n";
        let items = parse(src);
        assert!(items[0].hazards.is_empty());
    }

    #[test]
    fn nested_fn_owns_its_constructs() {
        let src = "fn outer() {\n    fn inner(buf: &[u8]) -> u8 { buf[0] }\n    other();\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        let outer = items.iter().find(|i| i.name == "outer").unwrap();
        let inner = items.iter().find(|i| i.name == "inner").unwrap();
        assert!(outer.hazards.is_empty());
        assert_eq!(inner.hazards.len(), 1);
        assert_eq!(
            outer.calls.iter().map(|c| c.callee.as_str()).collect::<Vec<_>>(),
            vec!["other"]
        );
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let src = "trait T {\n    fn required(&self) -> usize;\n    fn provided(&self) -> usize { self.required() }\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert!(!items[0].has_body);
        assert!(items[1].has_body);
        assert_eq!(items[1].calls[0].callee, "required");
    }

    #[test]
    fn test_code_is_invisible() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(buf: &[u8]) -> u8 { buf[0] }\n}\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "prod");
    }

    #[test]
    fn impl_owner_attribution() {
        let src = "struct Cache;\nimpl Cache {\n    fn get(&self) {}\n}\n\
                   impl std::fmt::Display for Cache {\n    fn fmt(&self) {}\n}\n\
                   fn free() -> impl Iterator<Item = u8> { [0u8].into_iter() }\n";
        let items = parse(src);
        assert_eq!(items[0].name, "get");
        assert_eq!(items[0].owner.as_deref(), Some("Cache"));
        assert_eq!(items[1].name, "fmt");
        assert_eq!(items[1].owner.as_deref(), Some("Cache"));
        assert_eq!(items[2].name, "free");
        assert_eq!(items[2].owner, None);
    }

    #[test]
    fn generic_impl_and_where_clause_owner() {
        let src = "impl<T: Clone> Wrapper<T> where T: Send {\n    fn peek(&self) {}\n}\n";
        let items = parse(src);
        assert_eq!(items[0].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn struct_fields_parse_names_types_lines() {
        let src = "pub struct Cache {\n    inner: Mutex<Inner>,\n    pub hits: AtomicU64,\n    map: HashMap<usize, Entry>,\n}\nstruct Unit;\nstruct Tup(u8, u8);\n";
        let lexed = lexer::strip(src);
        let lines = Lines::new(&lexed.code);
        let fields = parse_fields(&lexed.code, &lines);
        let got: Vec<(&str, &str, &str, usize)> = fields
            .iter()
            .map(|f| (f.struct_name.as_str(), f.name.as_str(), f.ty.as_str(), f.line))
            .collect();
        assert_eq!(
            got,
            vec![
                ("Cache", "inner", "Mutex<Inner>", 2),
                ("Cache", "hits", "AtomicU64", 3),
                ("Cache", "map", "HashMap<usize, Entry>", 4),
            ]
        );
    }
}
