//! Rule R9: lock discipline.
//!
//! Builds a per-function lock-acquisition picture — which `Mutex`/`RwLock`
//! guards are *live* at every call site — and checks three hazards:
//!
//! 1. **Guard held across expensive work**: a live guard spanning a call
//!    that is, or transitively reaches, decode/codec/IO work (by name
//!    pattern or through the resolved call graph). Long critical sections
//!    serialize the scoped worker pools the chunked paths rely on.
//! 2. **Double acquisition**: the same lock field acquired again — directly
//!    or through a callee that may acquire it — while its guard is still
//!    live. `std::sync::Mutex` is not reentrant; this self-deadlocks.
//! 3. **Inconsistent acquisition order**: for every pair of lock fields the
//!    pass records the order they are nested in (`X` held while `Y` is
//!    taken); a cycle in that pairwise order graph is a potential
//!    cross-thread deadlock.
//!
//! Lock fields are discovered from named-struct declarations whose type
//! mentions `Mutex<`/`RwLock<`. Acquisition sites are `.lock()`, and
//! `.read()`/`.write()` on known lock fields, plus any call to the
//! workspace `lock_or_recover` helper — the single audited poison-recovery
//! idiom `cliz-store` uses. A `let`-bound acquisition (possibly behind
//! `unwrap`/`expect`/`unwrap_or_else` wrappers) is live until `drop(..)`,
//! the end of its block, or the end of the function; any other acquisition
//! is a statement-scoped temporary. Functions whose return type contains
//! `Guard` are *guard helpers*: a binding initialized from one carries the
//! helper's own acquisitions.
//!
//! Unlike R5's bare-name call graph, R9 resolves calls with receiver
//! typing: `self.m()` resolves within the enclosing `impl`, `self.field.m()`
//! through the field's declared type, `Type::f()` through the path
//! qualifier. Unresolvable calls (locals, chained expressions, std) drop
//! out, so the interprocedural side under-approximates — precision over
//! noise, same trade the R7 dataflow makes. Guard identity is by field
//! *name*: distinct elements of a `Vec<Mutex<_>>` share one identity
//! (conservative), and same-named fields of different structs merge
//! (documented limit). Deliberate long critical sections — the per-chunk
//! stampede guard that must span a decode — are suppressed at the site
//! with `xtask-allow: R9 -- reason`.

use crate::contracts::is_test_path;
use crate::items::{self, FieldDecl, FnItem, NON_CALL_KEYWORDS};
use crate::lexer::{
    self, ident_at, ident_ending_at, ident_starts_at, is_ident, next_nonws, prev_nonws, Lines,
};
use std::collections::{HashMap, HashSet};

/// Crates exempt from R9: dev tooling, and the vendored loom model checker
/// whose whole purpose is to hold guards across scheduler waits.
const EXEMPT: &[&str] = &["crates/xtask/", "crates/bench/", "crates/loom/"];

/// Callee-name patterns that mark a call as expensive (codec or IO work).
const EXPENSIVE_SUBSTRINGS: &[&str] = &["decompress", "decode", "compress", "encode"];
const EXPENSIVE_PREFIXES: &[&str] = &["read_", "write_"];
const EXPENSIVE_EXACT: &[&str] = &[
    "read",
    "write",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "sync_all",
];

/// Method names that merely adapt an acquisition result without ending the
/// guard's life: `m.lock().unwrap_or_else(PoisonError::into_inner)` still
/// binds a guard.
const GUARD_WRAPPERS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or_else",
    "map_err",
    "ok",
    "unwrap_or_default",
];

/// An R9 finding, pre-suppression.
#[derive(Debug)]
pub struct LockFinding {
    pub file: String,
    pub line: usize,
    pub message: String,
}

fn is_exempt(file: &str) -> bool {
    EXEMPT.iter().any(|p| file.starts_with(p))
}

fn is_expensive_name(name: &str) -> bool {
    EXPENSIVE_SUBSTRINGS.iter().any(|s| name.contains(s))
        || EXPENSIVE_PREFIXES.iter().any(|p| name.starts_with(p))
        || EXPENSIVE_EXACT.contains(&name)
}

/// Receiver shape of a call site, for typed-lite resolution.
#[derive(Debug, Clone)]
enum Recv {
    /// `self.m(..)` — resolve within the enclosing impl.
    SelfRecv,
    /// `self.field.m(..)` — resolve through the field's declared type.
    Field(String),
    /// `Type::f(..)` — resolve through the path qualifier.
    Type(String),
    /// Bare `f(..)` — resolve to free functions.
    Free,
    /// Local variable or chained expression — unresolvable.
    Opaque,
}

/// How an acquisition (or guard-helper call) is bound.
#[derive(Debug, Clone)]
enum Bind {
    /// `let NAME = <acquisition>;` — guard lives until drop/block end.
    Let(String),
    /// Statement-scoped temporary (`self.lock_arena().pop()`).
    Temp,
}

/// One event in a function body, in source order.
#[derive(Debug)]
enum Ev {
    Acquire {
        field: Option<String>,
        label: String,
        line: usize,
        depth: usize,
        bind: Bind,
    },
    Call {
        name: String,
        recv: Recv,
        line: usize,
        depth: usize,
        bind: Bind,
    },
    DropOf {
        name: String,
    },
    /// `}` — `depth` is the depth after closing.
    Close {
        depth: usize,
    },
    /// `;` — ends statement-scoped temporaries.
    Stmt,
}

struct PreparedFile {
    file: String,
    active: String,
    items: Vec<FnItem>,
    fields: Vec<FieldDecl>,
}

/// A function's global index entry: file index, item index, and derived
/// facts filled in by the fixed-point passes.
struct Func {
    fidx: usize,
    name: String,
    owner: Option<String>,
    /// Return type mentions `Guard` — bindings from this call carry its
    /// direct acquisitions.
    guard_helper: bool,
    events: Vec<Ev>,
    /// Lock fields this function acquires directly.
    direct: HashSet<String>,
    /// Lock fields this function may acquire, transitively.
    may_acquire: HashSet<String>,
    /// Performs or reaches decode/codec/IO work.
    expensive: bool,
}

fn match_paren(b: &[u8], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len().saturating_sub(1)
}

/// True when everything from `i` to the statement end is a wrapper chain
/// (`?`, `.unwrap()`, `.unwrap_or_else(..)`, …) — the acquisition's guard
/// survives into its `let` binding.
fn wrappers_only(b: &[u8], mut i: usize, hi: usize) -> bool {
    while i <= hi && i < b.len() {
        let c = b[i];
        if (c as char).is_whitespace() || c == b'?' {
            i += 1;
            continue;
        }
        if c == b';' || c == b'}' {
            return true;
        }
        if c == b'.' {
            let Some((j, c2)) = next_nonws(b, i + 1) else {
                return false;
            };
            if !is_ident(c2) {
                return false;
            }
            let w = ident_at(b, j);
            if !GUARD_WRAPPERS.contains(&w) {
                return false;
            }
            let Some((p, c3)) = next_nonws(b, j + w.len()) else {
                return false;
            };
            if c3 != b'(' {
                return false;
            }
            i = match_paren(b, p) + 1;
            continue;
        }
        return false;
    }
    true
}

/// Scans one function body into an event stream. `alias` tracking lets a
/// later `lock.lock()` resolve when `lock` was bound from a lock field
/// (`let lock = self.locks.get(i)…`).
fn scan_events(
    active: &str,
    lines: &Lines,
    item: &FnItem,
    nested: &[(usize, usize)],
    lock_fields: &HashSet<String>,
) -> Vec<Ev> {
    let b = active.as_bytes();
    let mut evs = Vec::new();
    if !item.has_body {
        return evs;
    }
    let (lo, hi) = (item.body_open + 1, item.end);
    let mut depth = 1usize;
    let mut pending_let: Option<String> = None;
    let mut let_name_of_stmt: Option<String> = None;
    let mut stmt_lock_field: Option<String> = None;
    let mut stmt_had_acquire = false;
    let mut alias: HashMap<String, String> = HashMap::new();

    let mut i = lo;
    'outer: while i <= hi && i < b.len() {
        for &(ns, ne) in nested {
            if i >= ns && i <= ne {
                i = ne + 1;
                continue 'outer;
            }
        }
        match b[i] {
            b'{' => {
                depth += 1;
                i += 1;
                continue;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                evs.push(Ev::Close { depth });
                i += 1;
                continue;
            }
            b';' => {
                if !stmt_had_acquire {
                    if let (Some(n), Some(f)) = (&let_name_of_stmt, &stmt_lock_field) {
                        alias.insert(n.clone(), f.clone());
                    }
                }
                evs.push(Ev::Stmt);
                pending_let = None;
                let_name_of_stmt = None;
                stmt_lock_field = None;
                stmt_had_acquire = false;
                i += 1;
                continue;
            }
            _ => {}
        }
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        let start = i;
        i += word.len();
        let line = lines.line_of(start);
        let next = next_nonws(b, i);
        let prev = prev_nonws(b, start);

        if word == "let" {
            // `let [mut] NAME =`; tuple/enum patterns record no binding.
            if let Some((k, c)) = next_nonws(b, i) {
                let mut k2 = k;
                if is_ident(c) && ident_at(b, k) == "mut" {
                    if let Some((k3, _)) = next_nonws(b, k + 3) {
                        k2 = k3;
                    }
                }
                if k2 < b.len() && is_ident(b[k2]) && !b[k2].is_ascii_digit() {
                    let name = ident_at(b, k2);
                    let after = next_nonws(b, k2 + name.len());
                    let is_pattern =
                        after.is_some_and(|(_, c)| c == b'(' || c == b'{') || name == "mut";
                    if name != "_" && !is_pattern {
                        pending_let = Some(name.to_string());
                        let_name_of_stmt = Some(name.to_string());
                    }
                }
            }
            continue;
        }

        // Mention of a lock field (`self.locks…`): candidate for aliasing.
        if lock_fields.contains(word) && prev.is_some_and(|(_, c)| c == b'.') {
            stmt_lock_field = Some(word.to_string());
        }

        // `drop(g)` ends a guard's life early.
        if word == "drop"
            && next.is_some_and(|(_, c)| c == b'(')
            && !prev.is_some_and(|(_, c)| c == b'.')
        {
            if let Some((j, c2)) = next.and_then(|(p, _)| next_nonws(b, p + 1)) {
                if is_ident(c2) {
                    evs.push(Ev::DropOf {
                        name: ident_at(b, j).to_string(),
                    });
                }
            }
            continue;
        }

        let Some((open_paren, c)) = next else { continue };
        if c != b'(' || NON_CALL_KEYWORDS.contains(&word) {
            continue;
        }
        let close_paren = match_paren(b, open_paren);
        let is_method = prev.is_some_and(|(_, c)| c == b'.');

        let recv = if is_method {
            let dot = prev.map(|(p, _)| p).unwrap_or(0);
            match prev_nonws(b, dot) {
                Some((p, c)) if is_ident(c) => {
                    let r = ident_ending_at(b, p + 1).to_string();
                    let r_start = p + 1 - r.len();
                    let self_qualified = prev_nonws(b, r_start).is_some_and(|(q, cq)| {
                        cq == b'.'
                            && prev_nonws(b, q)
                                .is_some_and(|(q2, c2)| is_ident(c2) && ident_ending_at(b, q2 + 1) == "self")
                    });
                    if r == "self" {
                        Recv::SelfRecv
                    } else if self_qualified {
                        Recv::Field(r)
                    } else {
                        // A bare local; resolution uses the alias map for
                        // acquisitions and drops the edge otherwise.
                        Recv::Opaque
                    }
                }
                _ => Recv::Opaque,
            }
        } else if prev.is_some_and(|(_, c)| c == b':') {
            let colon = prev.map(|(p, _)| p).unwrap_or(0);
            if colon >= 1 && b[colon - 1] == b':' {
                match prev_nonws(b, colon - 1) {
                    Some((p, c)) if is_ident(c) => {
                        Recv::Type(ident_ending_at(b, p + 1).to_string())
                    }
                    _ => Recv::Opaque,
                }
            } else {
                Recv::Opaque
            }
        } else {
            Recv::Free
        };

        // Is this an acquisition site?
        let mut acq: Option<(Option<String>, String)> = None;
        if word == "lock_or_recover" {
            let args = &active[open_paren + 1..close_paren];
            let (mut field, mut last) = (None, None);
            let ab = args.as_bytes();
            let mut a = 0usize;
            while a < ab.len() {
                if ident_starts_at(ab, a) {
                    let w = ident_at(ab, a);
                    if lock_fields.contains(w) {
                        field = Some(w.to_string());
                    }
                    last = Some(w.to_string());
                    a += w.len();
                } else {
                    a += 1;
                }
            }
            let label = field.clone().or(last).unwrap_or_else(|| "lock".into());
            acq = Some((field, label));
        } else if is_method && (word == "lock" || word == "read" || word == "write") {
            // Receiver ident directly before the dot (may be a field,
            // an alias, or unknown).
            let recv_ident = prev
                .and_then(|(dot, _)| prev_nonws(b, dot))
                .filter(|&(_, c)| is_ident(c))
                .map(|(p, _)| ident_ending_at(b, p + 1).to_string());
            match recv_ident {
                Some(r) if r == "self" => {} // `self.lock()` is a helper call
                Some(r) => {
                    if lock_fields.contains(&r) {
                        acq = Some((Some(r.clone()), r));
                    } else if let Some(f) = alias.get(&r) {
                        acq = Some((Some(f.clone()), f.clone()));
                    } else if word == "lock" {
                        acq = Some((None, r));
                    }
                }
                None if word == "lock" => acq = Some((None, "<expr>".into())),
                None => {}
            }
        }

        let bind = if wrappers_only(b, close_paren + 1, hi) {
            match pending_let.take() {
                Some(n) => Bind::Let(n),
                None => Bind::Temp,
            }
        } else {
            // Something other than a wrapper chain follows: if this was a
            // let initializer, the binding is not the guard itself.
            pending_let = None;
            Bind::Temp
        };

        match acq {
            Some((field, label)) => {
                stmt_had_acquire = true;
                evs.push(Ev::Acquire {
                    field,
                    label,
                    line,
                    depth,
                    bind,
                });
            }
            None => evs.push(Ev::Call {
                name: word.to_string(),
                recv,
                line,
                depth,
                bind,
            }),
        }
    }
    evs
}

fn prepare(files: &[(String, String)]) -> Vec<PreparedFile> {
    let mut out = Vec::new();
    for (rel, src) in files {
        if is_exempt(rel) || is_test_path(rel) {
            continue;
        }
        let lexed = lexer::strip(src);
        let active = lexer::blank_test_items(&lexed.code);
        let (items, fields) = {
            let lines = Lines::new(&active);
            (
                items::parse_items(&active, &lines),
                items::parse_fields(&active, &lines),
            )
        };
        out.push(PreparedFile {
            file: rel.clone(),
            active,
            items,
            fields,
        });
    }
    out
}

/// A live guard during replay.
struct LiveGuard {
    field: Option<String>,
    label: String,
    name: Option<String>,
    depth: usize,
    temp: bool,
}

/// Runs the R9 pass over the workspace file set.
pub fn analyze(files: &[(String, String)]) -> Vec<LockFinding> {
    let prepared = prepare(files);

    // Global type / field facts.
    let mut lock_fields: HashSet<String> = HashSet::new();
    let mut type_names: HashSet<String> = HashSet::new();
    for pf in &prepared {
        for fd in &pf.fields {
            type_names.insert(fd.struct_name.clone());
            if fd.ty.contains("Mutex<") || fd.ty.contains("RwLock<") {
                lock_fields.insert(fd.name.clone());
            }
        }
        for it in &pf.items {
            if let Some(o) = &it.owner {
                type_names.insert(o.clone());
            }
        }
    }
    // field name → owner-type candidates (idents of its declared type that
    // name a known workspace type).
    let mut field_types: HashMap<String, HashSet<String>> = HashMap::new();
    for pf in &prepared {
        for fd in &pf.fields {
            let tb = fd.ty.as_bytes();
            let mut a = 0usize;
            while a < tb.len() {
                if ident_starts_at(tb, a) {
                    let w = ident_at(tb, a);
                    if type_names.contains(w) {
                        field_types
                            .entry(fd.name.clone())
                            .or_default()
                            .insert(w.to_string());
                    }
                    a += w.len();
                } else {
                    a += 1;
                }
            }
        }
    }

    // Flat function index with events.
    let mut funcs: Vec<Func> = Vec::new();
    for (fidx, pf) in prepared.iter().enumerate() {
        let lines = Lines::new(&pf.active);
        for it in &pf.items {
            let nested: Vec<(usize, usize)> = pf
                .items
                .iter()
                .filter(|n| n.start > it.body_open && n.end <= it.end)
                .map(|n| (n.start, n.end))
                .collect();
            let sig = &pf.active[it.start..it.body_open];
            let guard_helper = sig
                .find("->")
                .is_some_and(|p| sig[p..].contains("Guard"));
            let events = scan_events(&pf.active, &lines, it, &nested, &lock_fields);
            let mut direct = HashSet::new();
            for ev in &events {
                if let Ev::Acquire {
                    field: Some(f), ..
                } = ev
                {
                    direct.insert(f.clone());
                }
            }
            funcs.push(Func {
                fidx,
                name: it.name.clone(),
                owner: it.owner.clone(),
                guard_helper,
                events,
                may_acquire: direct.clone(),
                direct,
                expensive: is_expensive_name(&it.name),
            });
        }
    }

    let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
    for (g, f) in funcs.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(g);
    }

    let resolve = |recv: &Recv, name: &str, owner: Option<&str>, funcs: &[Func]| -> Vec<usize> {
        let Some(cands) = by_name.get(name) else {
            return Vec::new();
        };
        match recv {
            Recv::SelfRecv => cands
                .iter()
                .copied()
                .filter(|&g| owner.is_some() && funcs[g].owner.as_deref() == owner)
                .collect(),
            Recv::Field(f) => match field_types.get(f) {
                Some(owners) => cands
                    .iter()
                    .copied()
                    .filter(|&g| funcs[g].owner.as_ref().is_some_and(|o| owners.contains(o)))
                    .collect(),
                None => Vec::new(),
            },
            Recv::Type(t) => cands
                .iter()
                .copied()
                .filter(|&g| funcs[g].owner.as_deref() == Some(t.as_str()))
                .collect(),
            Recv::Free => cands
                .iter()
                .copied()
                .filter(|&g| funcs[g].owner.is_none())
                .collect(),
            Recv::Opaque => Vec::new(),
        }
    };

    // Fixed points: may_acquire and expensive propagate caller-direction
    // over resolved edges.
    loop {
        let mut changed = false;
        for g in 0..funcs.len() {
            let owner = funcs[g].owner.clone();
            let mut gained: HashSet<String> = HashSet::new();
            let mut exp = funcs[g].expensive;
            for ev in &funcs[g].events {
                if let Ev::Call { name, recv, .. } = ev {
                    if !exp && is_expensive_name(name) {
                        exp = true;
                    }
                    for t in resolve(recv, name, owner.as_deref(), &funcs) {
                        gained.extend(funcs[t].may_acquire.iter().cloned());
                        exp = exp || funcs[t].expensive;
                    }
                }
            }
            let f = &mut funcs[g];
            for x in gained {
                changed |= f.may_acquire.insert(x);
            }
            if exp && !f.expensive {
                f.expensive = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Replay with guard liveness; collect findings and pairwise order edges.
    let mut findings: Vec<LockFinding> = Vec::new();
    let mut edges: HashMap<(String, String), (String, usize, String)> = HashMap::new();
    for g in 0..funcs.len() {
        let (fname, owner) = (funcs[g].name.clone(), funcs[g].owner.clone());
        let file = prepared[funcs[g].fidx].file.clone();
        let mut live: Vec<LiveGuard> = Vec::new();
        for ev in &funcs[g].events {
            match ev {
                Ev::Acquire {
                    field,
                    label,
                    line,
                    depth,
                    bind,
                } => {
                    for lg in &live {
                        match (&lg.field, field) {
                            (Some(a), Some(b)) if a == b => findings.push(LockFinding {
                                file: file.clone(),
                                line: *line,
                                message: format!(
                                    "lock `{b}` acquired in `{fname}` while a guard on `{b}` is still live — `std::sync::Mutex` is not reentrant; this self-deadlocks"
                                ),
                            }),
                            (Some(a), Some(b)) => {
                                edges
                                    .entry((a.clone(), b.clone()))
                                    .or_insert((file.clone(), *line, fname.clone()));
                            }
                            _ => {}
                        }
                    }
                    let (name, temp) = match bind {
                        Bind::Let(n) => (Some(n.clone()), false),
                        Bind::Temp => (None, true),
                    };
                    live.push(LiveGuard {
                        field: field.clone(),
                        label: label.clone(),
                        name,
                        depth: *depth,
                        temp,
                    });
                }
                Ev::Call {
                    name,
                    recv,
                    line,
                    depth,
                    bind,
                } => {
                    let targets = resolve(recv, name, owner.as_deref(), &funcs);
                    let mut callee_acquires: HashSet<&String> = HashSet::new();
                    let mut callee_expensive = is_expensive_name(name);
                    let mut helper_fields: Vec<String> = Vec::new();
                    for &t in &targets {
                        callee_acquires.extend(funcs[t].may_acquire.iter());
                        callee_expensive = callee_expensive || funcs[t].expensive;
                        if funcs[t].guard_helper {
                            helper_fields.extend(funcs[t].direct.iter().cloned());
                        }
                    }
                    for lg in &live {
                        if let Some(gf) = &lg.field {
                            if callee_acquires.contains(gf) {
                                findings.push(LockFinding {
                                    file: file.clone(),
                                    line: *line,
                                    message: format!(
                                        "call to `{name}(..)` in `{fname}` may re-acquire lock `{gf}` whose guard is still live — potential self-deadlock"
                                    ),
                                });
                            } else {
                                for f in &callee_acquires {
                                    edges
                                        .entry((gf.clone(), (*f).clone()))
                                        .or_insert((file.clone(), *line, fname.clone()));
                                }
                            }
                        }
                        if callee_expensive {
                            findings.push(LockFinding {
                                file: file.clone(),
                                line: *line,
                                message: format!(
                                    "guard on `{}` held across call to `{name}(..)` in `{fname}`, which reaches decode/codec/IO work — shrink the critical section or drop the guard first",
                                    lg.label
                                ),
                            });
                        }
                    }
                    if !helper_fields.is_empty() {
                        let (gname, temp) = match bind {
                            Bind::Let(n) => (Some(n.clone()), false),
                            Bind::Temp => (None, true),
                        };
                        for f in helper_fields {
                            live.push(LiveGuard {
                                label: f.clone(),
                                field: Some(f),
                                name: gname.clone(),
                                depth: *depth,
                                temp,
                            });
                        }
                    }
                }
                Ev::DropOf { name } => live.retain(|lg| lg.name.as_deref() != Some(name)),
                Ev::Close { depth } => live.retain(|lg| lg.depth <= *depth),
                Ev::Stmt => live.retain(|lg| !lg.temp),
            }
        }
    }

    // Cycle detection over the pairwise order graph: an edge (a, b) is part
    // of a cycle iff `b` reaches `a`.
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            for (a, b) in edges.keys() {
                if a == x {
                    stack.push(b);
                }
            }
        }
        false
    };
    for ((a, b), (file, line, fname)) in &edges {
        if reaches(b, a) {
            let rev = edges
                .get(&(b.clone(), a.clone()))
                .map(|(rf, rl, _)| format!(" (reverse order at {rf}:{rl})"))
                .unwrap_or_default();
            findings.push(LockFinding {
                file: file.clone(),
                line: *line,
                message: format!(
                    "inconsistent lock order in `{fname}`: `{b}` acquired while holding `{a}`, but the reverse nesting also occurs{rev} — keep one global acquisition order"
                ),
            });
        }
    }

    findings.sort_by(|x, y| (&x.file, x.line, &x.message).cmp(&(&y.file, y.line, &y.message)));
    findings.dedup_by(|x, y| x.file == y.file && x.line == y.line && x.message == y.message);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<LockFinding> {
        analyze(&[("crates/core/src/pipe.rs".to_string(), src.to_string())])
    }

    #[test]
    fn guard_across_expensive_call_is_flagged() {
        let src = "use std::sync::Mutex;\n\
            pub struct P { q: Mutex<Vec<u8>> }\n\
            impl P {\n\
                pub fn bad(&self, n: usize) -> usize {\n\
                    let g = self.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    decode_block(n) + g.len()\n\
                }\n\
            }\n\
            fn decode_block(n: usize) -> usize { n }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
        assert!(f[0].message.contains("held across call to `decode_block(..)`"));
    }

    #[test]
    fn dropped_guard_is_not_live() {
        let src = "use std::sync::Mutex;\n\
            pub struct P { q: Mutex<Vec<u8>> }\n\
            impl P {\n\
                pub fn ok(&self, n: usize) -> usize {\n\
                    let g = self.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    let len = g.len();\n\
                    drop(g);\n\
                    decode_block(n) + len\n\
                }\n\
            }\n\
            fn decode_block(n: usize) -> usize { n }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn statement_temporary_guard_does_not_leak() {
        let src = "use std::sync::Mutex;\n\
            pub struct P { q: Mutex<Vec<u8>> }\n\
            impl P {\n\
                pub fn ok(&self, n: usize) -> usize {\n\
                    let len = self.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len();\n\
                    decode_block(n) + len\n\
                }\n\
            }\n\
            fn decode_block(n: usize) -> usize { n }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn double_acquisition_direct_and_via_callee() {
        let src = "use std::sync::Mutex;\n\
            pub struct P { q: Mutex<u8> }\n\
            impl P {\n\
                fn helper_len(&self) -> u8 {\n\
                    *self.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n\
                }\n\
                pub fn direct(&self) -> u8 {\n\
                    let a = self.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    let b = self.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    *a + *b\n\
                }\n\
                pub fn via_call(&self) -> u8 {\n\
                    let a = self.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    *a + self.helper_len()\n\
                }\n\
            }\n";
        let f = run(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("while a guard on `q` is still live"), "{}", f[0].message);
        assert!(f[1].message.contains("may re-acquire lock `q`"), "{}", f[1].message);
    }

    #[test]
    fn lock_order_cycle_detected() {
        let src = "use std::sync::Mutex;\n\
            pub struct P { a: Mutex<u8>, b: Mutex<u8> }\n\
            impl P {\n\
                pub fn fwd(&self) -> u8 {\n\
                    let x = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    let y = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    *x + *y\n\
                }\n\
                pub fn rev(&self) -> u8 {\n\
                    let y = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    let x = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    *x + *y\n\
                }\n\
            }\n";
        let f = run(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.message.contains("inconsistent lock order")));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "use std::sync::Mutex;\n\
            pub struct P { a: Mutex<u8>, b: Mutex<u8> }\n\
            impl P {\n\
                pub fn one(&self) -> u8 {\n\
                    let x = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    let y = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    *x + *y\n\
                }\n\
                pub fn two(&self) -> u8 {\n\
                    let x = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    let y = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    *x * *y\n\
                }\n\
            }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_helper_binding_carries_fields() {
        let src = "use std::sync::{Mutex, MutexGuard};\n\
            pub struct C { inner: Mutex<u8> }\n\
            impl C {\n\
                fn lock(&self) -> MutexGuard<'_, u8> {\n\
                    self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n\
                }\n\
                pub fn bad(&self, n: usize) -> usize {\n\
                    let g = self.lock();\n\
                    decode_block(n) + *g as usize\n\
                }\n\
            }\n\
            fn decode_block(n: usize) -> usize { n }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("guard on `inner`"), "{}", f[0].message);
    }

    #[test]
    fn exempt_and_test_paths_skipped() {
        let src = "use std::sync::Mutex;\n\
            pub struct P { q: Mutex<u8> }\n\
            impl P {\n\
                pub fn bad(&self, n: usize) -> usize {\n\
                    let g = self.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                    decode_block(n) + *g as usize\n\
                }\n\
            }\n\
            fn decode_block(n: usize) -> usize { n }\n";
        for path in ["crates/xtask/src/x.rs", "crates/bench/src/y.rs", "crates/loom/src/z.rs", "tests/t.rs"] {
            assert!(
                analyze(&[(path.to_string(), src.to_string())]).is_empty(),
                "{path} should be exempt"
            );
        }
    }
}
