//! Rules R11–R13: hot-path performance audit.
//!
//! Unlike the safety passes (R5/R7), these rules guard *throughput*: the
//! decode/encode kernels are the reason this codebase exists, and the three
//! structural patterns below each cost an order of magnitude on real
//! climate-sized inputs.
//!
//! * **R11 — hot-loop allocation.** A heap allocation (`Vec::new`, `vec!`,
//!   `.to_vec()`, `.clone()`, `.collect()`, `format!`, `String::new`,
//!   `.to_string()`) inside a loop of a function reachable from a codec
//!   entry point. Hotness is seeded by name (`decode`, `decompress`,
//!   `encode`, `compress`, `quantize`, `reconstruct`) and propagated
//!   callee-direction over the same cross-crate call graph the R5 taint
//!   pass uses — a table-builder called once per stream from `decompress`
//!   is hot, a CLI arg formatter is not. Scope: the kernel crates
//!   (`entropy`, `lossless`, `quant`, `predict`, `grid`).
//!
//! * **R12 — bit-granular I/O.** A single-bit (or forced single-bit)
//!   `BitReader`/`BitWriter` call inside a loop in `entropy`/`lossless`
//!   source: `.read_bit(`, `.write_bit(`, `.read_bits(1)`, or
//!   `.write_bits(_, 1)`. Word-at-a-time buffering (one shift+mask per
//!   multi-bit read, whole-byte drains on write) is the required shape;
//!   a per-bit loop touches the accumulator bookkeeping once per *bit*
//!   instead of once per *code* and caps decode throughput at a few MB/s.
//!
//! * **R13 — vectorization-hostile loop.** A `for` loop in the numeric
//!   kernels (`quant`, `predict`, `grid`) that both indexes with a
//!   loop-header variable and re-tests an `Option` mask idiom per
//!   iteration (`is_some_and(`, `is_none_or(`, `.map_or(`, `is_valid(`).
//!   The per-element branch on a loop-invariant `Option` defeats
//!   autovectorization; hoist the `match mask` out of the loop and write
//!   each arm as a straight-line `zip`/`chunks_exact` scan.
//!
//! All three are heuristics over lexed code (comments/strings/test items
//! blanked), so deliberate exceptions — frozen differential-reference
//! kernels, cold setup loops — are suppressed at the site with
//! `xtask-allow: R11 -- reason`, keeping every exception auditable.

use crate::callgraph;
use crate::items::{self, FnItem};
use crate::lexer::{self, ident_at, ident_starts_at, is_ident, match_brace, next_nonws, Lines};
use std::collections::VecDeque;

/// A perf finding, pre-suppression.
#[derive(Debug)]
pub struct PerfFinding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// Function-name substrings that seed hotness for R11: the codec entry
/// points and the kernel stages they drive.
const HOT_SEEDS: &[&str] = &[
    "decode",
    "decompress",
    "encode",
    "compress",
    "quantize",
    "reconstruct",
];

/// Crates whose loops R11 audits: every byte of input funnels through
/// these kernels, so a per-iteration allocation is never acceptable
/// without an argued suppression.
const R11_SCOPE: &[&str] = &[
    "crates/entropy/src/",
    "crates/lossless/src/",
    "crates/quant/src/",
    "crates/predict/src/",
    "crates/grid/src/",
];

/// Allocation constructs R11 flags inside hot loops. Textual match over
/// lexed code (strings already blanked), so `"vec!"` in a message cannot
/// false-positive.
const ALLOC_PATTERNS: &[(&str, &str)] = &[
    ("Vec::new(", "`Vec::new()`"),
    ("vec!", "`vec!`"),
    (".to_vec(", "`.to_vec()`"),
    (".clone(", "`.clone()`"),
    (".collect(", "`.collect()`"),
    (".collect::", "`.collect::<..>()`"),
    ("format!", "`format!`"),
    ("String::new(", "`String::new()`"),
    (".to_string(", "`.to_string()`"),
];

/// Files whose bit I/O R12 audits.
const R12_SCOPE: &[&str] = &["crates/entropy/src/", "crates/lossless/src/"];

/// Single-bit I/O shapes R12 flags inside loops. `write_bits`/`read_bits`
/// with a literal-1 width are matched separately (argument-aware).
const BIT_PATTERNS: &[(&str, &str)] = &[
    (".read_bit(", "`.read_bit()`"),
    (".write_bit(", "`.write_bit()`"),
    (".read_bits(1)", "`.read_bits(1)`"),
];

/// Crates whose `for` loops R13 audits.
const R13_SCOPE: &[&str] = &[
    "crates/quant/src/",
    "crates/predict/src/",
    "crates/grid/src/",
];

/// Per-iteration `Option`-mask idioms R13 pairs with indexed access.
const MASK_IDIOMS: &[&str] = &["is_some_and(", "is_none_or(", ".map_or(", "is_valid("];

fn in_scope(scope: &[&str], rel_path: &str) -> bool {
    scope.iter().any(|p| rel_path.starts_with(p))
}

/// One `loop`/`while`/`for` body inside a function: keyword offset, the
/// header span (keyword end → body brace), and the body's brace span.
struct LoopSpan {
    is_for: bool,
    header_start: usize,
    open: usize,
    close: usize,
}

impl LoopSpan {
    fn contains(&self, offset: usize) -> bool {
        (self.open..=self.close).contains(&offset)
    }
}

/// Finds every loop body in `b[lo..hi]`. The body brace is the first `{`
/// at paren/bracket depth 0 after the keyword (struct literals are not
/// legal in loop headers without parens, so this is exact for valid Rust).
fn loop_spans(b: &[u8], lo: usize, hi: usize) -> Vec<LoopSpan> {
    let mut spans = Vec::new();
    let mut i = lo;
    while i < hi.min(b.len()) {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        let kw_end = i + word.len();
        if word != "loop" && word != "while" && word != "for" {
            i = kw_end;
            continue;
        }
        // `for<'a>` higher-ranked bounds are not loops.
        if word == "for" && next_nonws(b, kw_end).is_some_and(|(_, c)| c == b'<') {
            i = kw_end;
            continue;
        }
        let mut depth = 0isize;
        let mut j = kw_end;
        let mut open = None;
        while j < b.len() {
            match b[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(j);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = open {
            spans.push(LoopSpan {
                is_for: word == "for",
                header_start: kw_end,
                open,
                close: match_brace(b, open),
            });
        }
        i = kw_end;
    }
    spans
}

/// Identifiers bound by a `for` header pattern: everything between `for`
/// and the depth-0 `in` keyword, minus binding keywords. Handles simple
/// (`for i in ..`), tuple (`for (i, v) in ..`), and `&`-pattern headers.
fn header_idents(b: &[u8], header_start: usize, open: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut i = header_start;
    while i < open {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let word = ident_at(b, i);
        i += word.len();
        match word {
            "in" => break,
            "mut" | "ref" | "_" => {}
            _ => idents.push(word.to_string()),
        }
    }
    idents
}

/// True when `hay` contains `needle` as a whole identifier.
fn contains_ident(hay: &str, needle: &str) -> bool {
    let b = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let after = at + needle.len();
        let after_ok = after >= b.len() || !is_ident(b[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// True when the `.write_bits(` / `.read_bits(` call starting at the `(`
/// at `open` passes a literal `1` as its width (last) argument.
fn width_arg_is_one(b: &[u8], open: usize) -> bool {
    let mut depth = 0isize;
    let mut last_arg_start = open + 1;
    let mut j = open;
    while j < b.len() {
        match b[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    let arg = std::str::from_utf8(&b[last_arg_start..j])
                        .unwrap_or("")
                        .trim();
                    return arg == "1";
                }
            }
            b',' if depth == 1 => last_arg_start = j + 1,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Runs the R11–R13 pass over product files (`(rel_path, source)`).
pub fn analyze(files: &[(String, String)]) -> Vec<PerfFinding> {
    // Lex once, parse items once; the call graph needs every file so
    // hotness can cross crate boundaries (core::decompress → entropy).
    let actives: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| {
            let lexed = lexer::strip(src);
            (rel.clone(), lexer::blank_test_items(&lexed.code))
        })
        .collect();
    let all_items: Vec<(String, Vec<FnItem>)> = actives
        .iter()
        .map(|(rel, active)| {
            let lines = Lines::new(active);
            (rel.clone(), items::parse_items(active, &lines))
        })
        .collect();

    // Hotness: multi-source BFS from codec-named functions, callee
    // direction, over the name-resolved graph.
    let graph = callgraph::build(&all_items);
    let mut hot = vec![false; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for (idx, node) in graph.nodes.iter().enumerate() {
        if HOT_SEEDS.iter().any(|s| node.item.name.contains(s)) {
            hot[idx] = true;
            queue.push_back(idx);
        }
    }
    while let Some(u) = queue.pop_front() {
        for e in &graph.edges[u] {
            if !hot[e.callee] {
                hot[e.callee] = true;
                queue.push_back(e.callee);
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, node) in graph.nodes.iter().enumerate() {
        if !node.item.has_body {
            continue;
        }
        let Some((_, active)) = actives.iter().find(|(rel, _)| rel == node.file) else {
            continue;
        };
        let lines = Lines::new(active);
        let b = active.as_bytes();
        let (lo, hi) = (node.item.body_open + 1, node.item.end);
        let spans = loop_spans(b, lo, hi);
        if spans.is_empty() {
            continue;
        }

        if hot[idx] && in_scope(R11_SCOPE, node.file) {
            scan_r11(active, &lines, &spans, node, &mut findings);
        }
        if in_scope(R12_SCOPE, node.file) {
            scan_r12(b, active, &lines, &spans, node, &mut findings);
        }
        if in_scope(R13_SCOPE, node.file) {
            scan_r13(b, active, &lines, &spans, node, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Every occurrence of `pat` in `active` that falls inside one of `spans`.
fn occurrences_in_loops(active: &str, pat: &str, spans: &[LoopSpan]) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = active[from..].find(pat) {
        let at = from + pos;
        if spans.iter().any(|s| s.contains(at)) {
            hits.push(at);
        }
        from = at + 1;
    }
    hits
}

fn scan_r11(
    active: &str,
    lines: &Lines,
    spans: &[LoopSpan],
    node: &callgraph::Node,
    findings: &mut Vec<PerfFinding>,
) {
    for (pat, label) in ALLOC_PATTERNS {
        for at in occurrences_in_loops(active, pat, spans) {
            findings.push(PerfFinding {
                rule: "R11",
                file: node.file.to_string(),
                line: lines.line_of(at),
                message: format!(
                    "{label} allocates inside a loop of `{}`, which is reachable from a \
                     codec entry point; hoist the allocation out of the loop",
                    node.item.name
                ),
            });
        }
    }
}

fn scan_r12(
    b: &[u8],
    active: &str,
    lines: &Lines,
    spans: &[LoopSpan],
    node: &callgraph::Node,
    findings: &mut Vec<PerfFinding>,
) {
    for (pat, label) in BIT_PATTERNS {
        for at in occurrences_in_loops(active, pat, spans) {
            findings.push(PerfFinding {
                rule: "R12",
                file: node.file.to_string(),
                line: lines.line_of(at),
                message: format!(
                    "{label} in a loop of `{}` processes one bit per accumulator update; \
                     batch through a word-at-a-time read/write",
                    node.item.name
                ),
            });
        }
    }
    // `.write_bits(x, 1)`: a forced single-bit write hiding behind the
    // multi-bit API.
    for at in occurrences_in_loops(active, ".write_bits(", spans) {
        let open = at + ".write_bits(".len() - 1;
        if width_arg_is_one(b, open) {
            findings.push(PerfFinding {
                rule: "R12",
                file: node.file.to_string(),
                line: lines.line_of(at),
                message: format!(
                    "`.write_bits(_, 1)` in a loop of `{}` writes one bit per call; \
                     pack the bits and write them as one word",
                    node.item.name
                ),
            });
        }
    }
}

fn scan_r13(
    b: &[u8],
    active: &str,
    lines: &Lines,
    spans: &[LoopSpan],
    node: &callgraph::Node,
    findings: &mut Vec<PerfFinding>,
) {
    for span in spans.iter().filter(|s| s.is_for) {
        let idents = header_idents(b, span.header_start, span.open);
        if idents.is_empty() {
            continue;
        }
        let body = &active[span.open..=span.close.min(active.len() - 1)];
        let idiom = MASK_IDIOMS.iter().find(|p| body.contains(*p));
        let Some(idiom) = idiom else { continue };

        // Indexed access with a header variable: `[..i..]` where `i` is
        // bound by the loop header.
        let bb = body.as_bytes();
        let mut indexed = false;
        let mut j = 0usize;
        while j < bb.len() && !indexed {
            if bb[j] == b'[' {
                let mut depth = 1isize;
                let mut k = j + 1;
                while k < bb.len() && depth > 0 {
                    match bb[k] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                let inner = &body[j + 1..k.saturating_sub(1).max(j + 1)];
                if idents.iter().any(|id| contains_ident(inner, id)) {
                    indexed = true;
                }
                j = k;
            } else {
                j += 1;
            }
        }
        if indexed {
            findings.push(PerfFinding {
                rule: "R13",
                file: node.file.to_string(),
                line: lines.line_of(span.header_start),
                message: format!(
                    "`for` loop in `{}` mixes per-element indexing with a per-iteration \
                     mask test (`{}`); hoist the mask match out of the loop and write \
                     each arm as a zip/chunks_exact scan",
                    node.item.name,
                    idiom.trim_end_matches('(')
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<(&'static str, usize)> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let mut v: Vec<_> = analyze(&owned).into_iter().map(|f| (f.rule, f.line)).collect();
        v.sort();
        v
    }

    #[test]
    fn r11_flags_allocation_in_hot_loop_only() {
        // `decode_block` is a hot seed; the allocation in its loop is
        // flagged, the identical one in cold `setup` is not, and the
        // hoisted allocation outside the loop passes.
        let src = "pub fn decode_block(n: usize) -> usize {\n\
                   let mut total = Vec::new();\n\
                   for i in 0..n {\n\
                   let scratch: Vec<u8> = Vec::new();\n\
                   total.push(scratch.len() + i);\n\
                   }\n\
                   total.len()\n\
                   }\n\
                   pub fn setup(n: usize) -> usize {\n\
                   let mut c = 0;\n\
                   for _ in 0..n { let v: Vec<u8> = Vec::new(); c += v.len(); }\n\
                   c\n\
                   }\n";
        assert_eq!(
            run(&[("crates/entropy/src/fixture.rs", src)]),
            vec![("R11", 4)]
        );
    }

    #[test]
    fn r11_hotness_propagates_across_crates() {
        let entry = "pub fn decompress_all(n: usize) -> usize { helper_fill(n) }\n";
        let helper = "pub fn helper_fill(n: usize) -> usize {\n\
                      let mut c = 0;\n\
                      while c < n { let s = x.to_vec(); c += s.len(); }\n\
                      c\n\
                      }\n";
        assert_eq!(
            run(&[
                ("crates/core/src/stream_fixture.rs", entry),
                ("crates/quant/src/fixture.rs", helper),
            ]),
            vec![("R11", 3)]
        );
    }

    #[test]
    fn r12_flags_single_bit_io_in_loops() {
        let src = "pub fn decode_codes(r: &mut R, n: usize) -> u32 {\n\
                   let mut acc = 0;\n\
                   for _ in 0..n {\n\
                   acc ^= r.read_bits(1);\n\
                   w.write_bits(acc, 1);\n\
                   }\n\
                   w.write_bits(acc, 13);\n\
                   acc\n\
                   }\n";
        assert_eq!(
            run(&[("crates/entropy/src/fixture.rs", src)]),
            vec![("R12", 4), ("R12", 5)]
        );
    }

    #[test]
    fn r12_word_at_a_time_io_passes() {
        let src = "pub fn decode_codes(r: &mut R, n: usize) -> u32 {\n\
                   let mut acc = 0;\n\
                   for _ in 0..n { acc ^= r.read_bits(11); }\n\
                   acc\n\
                   }\n";
        assert_eq!(run(&[("crates/entropy/src/fixture.rs", src)]), vec![]);
    }

    #[test]
    fn r13_flags_indexed_mask_test_loop() {
        let src = "pub fn apply(vals: &mut [f32], mask: Option<&[bool]>) {\n\
                   for i in 0..vals.len() {\n\
                   if mask.is_none_or(|m| m[i]) { vals[i] *= 2.0; }\n\
                   }\n\
                   }\n";
        assert_eq!(
            run(&[("crates/quant/src/fixture.rs", src)]),
            vec![("R13", 2)]
        );
    }

    #[test]
    fn r13_hoisted_mask_and_zip_forms_pass() {
        let src = "pub fn apply(vals: &mut [f32], mask: Option<&[bool]>) {\n\
                   match mask {\n\
                   None => for v in vals.iter_mut() { *v *= 2.0; },\n\
                   Some(m) => for (v, &keep) in vals.iter_mut().zip(m) {\n\
                   if keep { *v *= 2.0; }\n\
                   },\n\
                   }\n\
                   }\n";
        assert_eq!(run(&[("crates/quant/src/fixture.rs", src)]), vec![]);
    }

    #[test]
    fn r13_is_scoped_to_numeric_kernels() {
        let src = "pub fn apply(vals: &mut [f32], mask: Option<&[bool]>) {\n\
                   for i in 0..vals.len() {\n\
                   if mask.is_none_or(|m| m[i]) { vals[i] *= 2.0; }\n\
                   }\n\
                   }\n";
        assert_eq!(run(&[("crates/cli/src/fixture.rs", src)]), vec![]);
    }
}
