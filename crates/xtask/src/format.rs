//! Rules R14–R16: the container-format audit.
//!
//! * **R14 — serializer/parser symmetry.** Every writer and parser of a
//!   container format is identified by its use of a registry
//!   [`FormatSpec`] constant (a `.magic(&SPEC)` emission, an
//!   `expect_magic(&SPEC)` check, a hand-rolled `SPEC.magic` byte
//!   comparison, or a call to a generic helper that does one of those).
//!   For each format the ordered field emissions of the writer are
//!   replayed against the parser's ordered reads: a width or order
//!   mismatch, a format written but never parsed, or parsed but never
//!   written, is a finding. Trailer magics (`*_TRAILER_MAGIC`) must be
//!   both emitted and checked.
//! * **R15 — version discipline.** Hand-rolled parsers that check a magic
//!   must range-check a version byte (an `UnsupportedVersion` path or a
//!   `SPEC.version` comparison) before decoding any count/length field;
//!   magic constants and `FormatSpec` literals may only live in the
//!   `cliz-format` registry; two registry entries sharing a magic value
//!   is a finding.
//! * **R16 — parser error-surface coverage.** Every variant of an
//!   `*Error` enum in the format-handling crates must be constructed
//!   somewhere in product code (no dead error surface); variants
//!   constructed on a parse path must be asserted by at least one test
//!   and be reachable from a decode entry point.
//!
//! The pass is scoped to the crates that own container formats
//! (`format`, `core`, `store`, `cli`, `lossless`, `baselines`); xtask's
//! own sources and fixtures are exempt. Like R8, the analysis sees the
//! integration-test files: they are R16 coverage evidence only.

use crate::contracts::is_test_path;
use crate::items::{self, FnItem};
use crate::lexer::{
    blank_test_items, ident_at, ident_ending_at, ident_starts_at, is_ident, match_brace,
    next_nonws, prev_nonws, strip, Lines,
};
use std::collections::{HashMap, HashSet};

/// One R14/R15/R16 finding.
#[derive(Debug)]
pub struct FormatFinding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// Crates whose sources are audited. The registry crate itself is scanned
/// for R16 but is exempt from R14/R15 (it *implements* the cursors the
/// other crates are paired through).
const FORMAT_SCOPE: &[&str] = &[
    "crates/format/src/",
    "crates/core/src/",
    "crates/store/src/",
    "crates/cli/src/",
    "crates/lossless/src/",
    "crates/baselines/src/",
    "crates/storage/src/",
    "crates/serve/src/",
];

fn in_scope(rel: &str) -> bool {
    FORMAT_SCOPE.iter().any(|p| rel.starts_with(p))
}

fn is_registry_path(rel: &str) -> bool {
    rel.contains("format/src")
}

fn is_exempt(rel: &str) -> bool {
    rel.starts_with("crates/xtask/") || rel.starts_with("crates/bench/")
}

/// `crates/<name>/…` → `<name>`; used for same-crate helper resolution.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

struct SrcFile {
    rel: String,
    /// Comments/strings blanked, test items blanked.
    active: String,
    /// Comments/strings blanked, test items kept (same length as `active`).
    stripped: String,
    lines: Lines,
    items: Vec<FnItem>,
}

pub fn analyze(files: &[(String, String)]) -> Vec<FormatFinding> {
    let mut product = Vec::new();
    let mut test_texts = Vec::new();
    for (rel, source) in files {
        if is_exempt(rel) {
            continue;
        }
        if is_test_path(rel) {
            test_texts.push((rel.clone(), strip(source).code));
            continue;
        }
        let stripped = strip(source).code;
        let active = blank_test_items(&stripped);
        let lines = Lines::new(&active);
        let fn_items = items::parse_items(&active, &lines);
        product.push(SrcFile {
            rel: rel.clone(),
            active,
            stripped,
            lines,
            items: fn_items,
        });
    }

    let mut findings = Vec::new();
    let reg = parse_registry(&product);
    r15_literals(&product, &reg, &mut findings);
    let class = classify(&product, &reg);
    r14(&product, &reg, &class, &mut findings);
    r15_versions(&product, &class, &mut findings);
    r16(&product, &test_texts, &class, &mut findings);
    findings
}

// ---------------------------------------------------------------------------
// Registry parsing
// ---------------------------------------------------------------------------

struct SpecDef {
    ident: String,
    value: Option<u64>,
    file: String,
    line: usize,
}

#[derive(Default)]
struct Registry {
    specs: Vec<SpecDef>,
    trailers: Vec<SpecDef>,
}

fn parse_registry(product: &[SrcFile]) -> Registry {
    let mut reg = Registry::default();
    for f in product.iter().filter(|f| is_registry_path(&f.rel)) {
        let b = f.active.as_bytes();
        let mut i = 0;
        while i < b.len() {
            if !ident_starts_at(b, i) {
                i += 1;
                continue;
            }
            let id = ident_at(b, i);
            if id == "const" {
                if let Some(def) = parse_const_decl(f, i) {
                    if def.0 == "FormatSpec" {
                        reg.specs.push(def.1);
                    } else if def.0 == "u32" && def.1.ident.contains("TRAILER") {
                        reg.trailers.push(def.1);
                    }
                }
            }
            i += id.len().max(1);
        }
    }
    reg
}

/// Parses `const NAME: TYPE = …` at `at` (the `const` keyword). Returns the
/// type ident and a [`SpecDef`] whose value is the magic literal (for
/// `FormatSpec { … magic: 0x…, … }`) or the initializer (for `u32`).
fn parse_const_decl(f: &SrcFile, at: usize) -> Option<(String, SpecDef)> {
    let b = f.active.as_bytes();
    let (j, c) = next_nonws(b, at + 5)?;
    if !is_ident(c) {
        return None;
    }
    let name = ident_at(b, j).to_string();
    let (k, colon) = next_nonws(b, j + name.len())?;
    if colon != b':' {
        return None;
    }
    let (t, tc) = next_nonws(b, k + 1)?;
    if !is_ident(tc) {
        return None;
    }
    let ty = ident_at(b, t).to_string();
    let value = if ty == "FormatSpec" {
        spec_magic_value(b, t + ty.len())
    } else {
        let eq = find_byte(b, t + ty.len(), b'=')?;
        parse_number(b, eq + 1)
    };
    Some((
        ty,
        SpecDef {
            ident: name,
            value,
            file: f.rel.clone(),
            line: f.lines.line_of(j),
        },
    ))
}

/// The `magic:` field literal inside the `FormatSpec { … }` initializer
/// starting after `from`.
fn spec_magic_value(b: &[u8], from: usize) -> Option<u64> {
    let open = find_byte(b, from, b'{')?;
    let close = match_brace(b, open);
    let mut i = open + 1;
    while i < close {
        if ident_starts_at(b, i) {
            let id = ident_at(b, i);
            if id == "magic" {
                if let Some((k, b':')) = next_nonws(b, i + id.len()) {
                    return parse_number(b, k + 1);
                }
            }
            i += id.len().max(1);
            continue;
        }
        i += 1;
    }
    None
}

fn find_byte(b: &[u8], from: usize, target: u8) -> Option<usize> {
    b.get(from..)?.iter().position(|&c| c == target).map(|p| from + p)
}

/// Parses a decimal or `0x…` integer literal (with `_` separators) at the
/// first non-whitespace position at/after `from`.
fn parse_number(b: &[u8], from: usize) -> Option<u64> {
    let (mut i, c) = next_nonws(b, from)?;
    if !c.is_ascii_digit() {
        return None;
    }
    let hex = b[i..].starts_with(b"0x") || b[i..].starts_with(b"0X");
    if hex {
        i += 2;
    }
    let radix = if hex { 16 } else { 10 };
    let mut v: u64 = 0;
    let mut any = false;
    while i < b.len() {
        let ch = b[i] as char;
        if ch == '_' {
            i += 1;
            continue;
        }
        match ch.to_digit(radix) {
            Some(d) => {
                v = v.wrapping_mul(u64::from(radix)).wrapping_add(u64::from(d));
                any = true;
                i += 1;
            }
            None => break,
        }
    }
    any.then_some(v)
}

fn match_delim(b: &[u8], open: usize, oc: u8, cc: u8) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < b.len() {
        if b[i] == oc {
            depth += 1;
        } else if b[i] == cc {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    b.len().saturating_sub(1)
}

fn match_paren(b: &[u8], open: usize) -> usize {
    match_delim(b, open, b'(', b')')
}

/// All offsets in `[from, to)` where the identifier token `name` starts.
fn ident_occurrences(b: &[u8], from: usize, to: usize, name: &str) -> Vec<usize> {
    let nb = name.as_bytes();
    let mut out = Vec::new();
    let mut i = from;
    while i + nb.len() <= to {
        if ident_starts_at(b, i) && b[i..].starts_with(nb) && !is_ident(b[i + nb.len()]) {
            out.push(i);
            i += nb.len();
        } else {
            i += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Field-program model (R14)
// ---------------------------------------------------------------------------

/// One element of a writer's or parser's ordered field program.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    /// The magic+version prefix (a `.magic`/`expect_magic` site).
    Magic,
    /// A single fixed-width field.
    Op(&'static str),
    /// Fields emitted inside one loop body, in order.
    Group(Vec<&'static str>),
    /// A homogeneous run (loop plus adjacent same-width fields) — the
    /// star-normalized form that makes `N` and `N+1` element encodings of
    /// the same table compare equal.
    Star(&'static str),
}

#[derive(Clone, Debug)]
struct Program {
    toks: Vec<Tok>,
    /// False once extraction hit an opaque operation (`raw`, `take`,
    /// `rest`, a `match`, …): the tail of the format is not replayable and
    /// only the extracted prefix is compared.
    complete: bool,
}

impl Program {
    fn opaque() -> Program {
        Program {
            toks: vec![Tok::Magic],
            complete: false,
        }
    }
}

/// Cursor method → canonical field tag. `len64` is the checked read of a
/// `u64` length, so it pairs with a written `u64`.
const OP_TAGS: &[(&str, &str)] = &[
    (".u8(", "u8"),
    (".u16(", "u16"),
    (".u32(", "u32"),
    (".u64(", "u64"),
    (".len64(", "u64"),
    (".varint(", "varint"),
    (".f32(", "f32"),
    (".f64(", "f64"),
    (".block(", "block"),
    (".str16(", "str16"),
];

/// Cursor methods whose payload is not a fixed field sequence: extraction
/// stops and the program is marked incomplete.
const STOP_CALLS: &[&str] = &[".raw(", ".take(", ".skip(", ".rest(", ".to_le_bytes("];

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Writer,
    Reader,
}

/// A function classified as the writer or parser of one format.
struct Party {
    file: usize,
    item: usize,
    prog: Program,
    /// Classified for more than one spec (a dispatcher): pairing evidence
    /// only, no field replay.
    multi: bool,
    /// Classification came from a hand-rolled `SPEC.magic` byte
    /// comparison/emission rather than the shared cursor.
    hand: bool,
    /// Offset of the classifying evidence (anchor for R15's scan).
    at: usize,
}

#[derive(Default)]
struct Class {
    writers: HashMap<String, Vec<Party>>,
    readers: HashMap<String, Vec<Party>>,
    /// Trailer-magic evidence: (trailer ident, file, offset).
    trailer_writes: Vec<(String, usize, usize)>,
    trailer_reads: Vec<(String, usize, usize)>,
    /// Every fn with parse-side evidence (for R16's parser set).
    reader_fns: HashSet<(usize, usize)>,
}

/// Generic helpers: fns taking a `&FormatSpec` parameter that emit or check
/// the magic themselves or delegate to another helper. Registry files are
/// excluded so the cursor implementation never becomes a "helper".
struct Helpers {
    by_name: HashMap<String, Vec<(usize, usize)>>,
    kind: HashMap<(usize, usize), Kind>,
}

impl Helpers {
    fn resolve(&self, name: &str, caller_crate: &str, product: &[SrcFile]) -> Option<(usize, usize)> {
        let cands = self.by_name.get(name)?;
        let same: Vec<_> = cands
            .iter()
            .filter(|(fi, _)| crate_of(&product[*fi].rel) == caller_crate)
            .collect();
        match (same.len(), cands.len()) {
            (1, _) => Some(*same[0]),
            (0, 1) => Some(cands[0]),
            _ => None,
        }
    }
}

fn sig_has_spec(f: &SrcFile, it: &FnItem) -> bool {
    it.has_body && f.active[it.start..it.body_open].contains("FormatSpec")
}

fn find_helpers(product: &[SrcFile]) -> Helpers {
    let mut kind: HashMap<(usize, usize), Kind> = HashMap::new();
    // Seed: helpers that touch the magic directly.
    for (fi, f) in product.iter().enumerate() {
        if !in_scope(&f.rel) || is_registry_path(&f.rel) {
            continue;
        }
        for (ii, it) in f.items.iter().enumerate() {
            if !sig_has_spec(f, it) {
                continue;
            }
            let body = &f.active[it.body_open..=it.end];
            if body.contains("expect_magic(") {
                kind.insert((fi, ii), Kind::Reader);
            } else if body.contains(".magic(") {
                kind.insert((fi, ii), Kind::Writer);
            }
        }
    }
    // Propagate: a spec-parameterized fn that calls a helper is a helper.
    loop {
        let mut changed = false;
        for (fi, f) in product.iter().enumerate() {
            if !in_scope(&f.rel) || is_registry_path(&f.rel) {
                continue;
            }
            for (ii, it) in f.items.iter().enumerate() {
                if kind.contains_key(&(fi, ii)) || !sig_has_spec(f, it) {
                    continue;
                }
                for call in &it.calls {
                    let hit = kind
                        .iter()
                        .find(|((hf, hi), _)| product[*hf].items[*hi].name == call.callee)
                        .map(|(_, k)| *k);
                    if let Some(k) = hit {
                        kind.insert((fi, ii), k);
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut by_name: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
    for &(fi, ii) in kind.keys() {
        by_name
            .entry(product[fi].items[ii].name.clone())
            .or_default()
            .push((fi, ii));
    }
    for v in by_name.values_mut() {
        v.sort_unstable();
    }
    Helpers { by_name, kind }
}

/// Raw classification evidence found in one fn body.
struct Ev {
    kind: Kind,
    spec: String,
    /// Scan resumes here (past the anchoring call); `None` = hand-rolled.
    anchor_end: Option<usize>,
    cursor: Option<String>,
    /// Delegated helper whose program is spliced in at the anchor.
    splice: Option<(usize, usize)>,
    at: usize,
}

fn scan_evidence(
    product: &[SrcFile],
    fi: usize,
    it: &FnItem,
    spec_idents: &HashSet<&str>,
    helpers: &Helpers,
) -> Vec<Ev> {
    let f = &product[fi];
    let b = f.active.as_bytes();
    let (lo, hi) = (it.body_open, it.end);
    let mut evs = Vec::new();

    // Cursor emissions: `cur.magic(&SPEC)`.
    let mut i = lo;
    while let Some(p) = find_sub(b, i, hi, b".magic(") {
        let open = p + 6;
        let close = match_paren(b, open);
        let cursor = Some(ident_ending_at(b, p).to_string()).filter(|c| !c.is_empty());
        for s in idents_in(b, open + 1, close, spec_idents) {
            evs.push(Ev {
                kind: Kind::Writer,
                spec: s,
                anchor_end: Some(close + 1),
                cursor: cursor.clone(),
                splice: None,
                at: p,
            });
        }
        i = close + 1;
    }
    // Cursor checks: `cur.expect_magic(&SPEC)`.
    let mut i = lo;
    while let Some(p) = find_sub(b, i, hi, b"expect_magic(") {
        if !ident_starts_at(b, p) {
            i = p + 1;
            continue;
        }
        let open = p + 12;
        let close = match_paren(b, open);
        let cursor = (p > 0 && b[p - 1] == b'.')
            .then(|| ident_ending_at(b, p - 1).to_string())
            .filter(|c| !c.is_empty());
        for s in idents_in(b, open + 1, close, spec_idents) {
            evs.push(Ev {
                kind: Kind::Reader,
                spec: s,
                anchor_end: Some(close + 1),
                cursor: cursor.clone(),
                splice: None,
                at: p,
            });
        }
        i = close + 1;
    }
    // Hand-rolled `SPEC.magic` byte emission or comparison.
    for &spec in spec_idents {
        for q in ident_occurrences(b, lo, hi, spec) {
            let after = q + spec.len();
            if !b[after..].starts_with(b".magic") || b.get(after + 6) == Some(&b'(') {
                continue;
            }
            let is_cmp = prev_nonws(b, q).is_some_and(|(j, c)| {
                c == b'=' && j > 0 && (b[j - 1] == b'!' || b[j - 1] == b'=')
            });
            evs.push(Ev {
                kind: if is_cmp { Kind::Reader } else { Kind::Writer },
                spec: spec.to_string(),
                anchor_end: None,
                cursor: None,
                splice: None,
                at: q,
            });
        }
    }
    // Delegation to a generic helper with a registry spec argument.
    for name in helpers.by_name.keys() {
        for q in ident_occurrences(b, lo, hi, name) {
            let Some((op, b'(')) = next_nonws(b, q + name.len()) else {
                continue;
            };
            let is_def = prev_nonws(b, q)
                .is_some_and(|(j, c)| is_ident(c) && ident_ending_at(b, j + 1) == "fn");
            if is_def {
                continue;
            }
            let Some(key) = helpers.resolve(name, crate_of(&f.rel), product) else {
                continue;
            };
            let close = match_paren(b, op);
            let cursor = cursor_arg(b, op + 1, close);
            for s in idents_in(b, op + 1, close, spec_idents) {
                evs.push(Ev {
                    kind: helpers.kind[&key],
                    spec: s,
                    anchor_end: Some(close + 1),
                    cursor: cursor.clone(),
                    splice: Some(key),
                    at: q,
                });
            }
        }
    }
    evs.sort_by_key(|e| e.at);
    evs
}

fn find_sub(b: &[u8], from: usize, to: usize, pat: &[u8]) -> Option<usize> {
    if to < pat.len() || from + pat.len() > to {
        return None;
    }
    (from..=to - pat.len()).find(|&i| b[i..].starts_with(pat))
}

fn idents_in(b: &[u8], from: usize, to: usize, set: &HashSet<&str>) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = from;
    while i < to {
        if ident_starts_at(b, i) {
            let id = ident_at(b, i);
            if set.contains(id) {
                out.push(id.to_string());
            }
            i += id.len().max(1);
        } else {
            i += 1;
        }
    }
    out
}

/// The `&mut X` argument of a delegating call: the cursor the caller keeps
/// using after the helper returns.
fn cursor_arg(b: &[u8], from: usize, to: usize) -> Option<String> {
    let p = find_sub(b, from, to, b"mut ")?;
    let (j, c) = next_nonws(b, p + 4)?;
    is_ident(c).then(|| ident_at(b, j).to_string())
}

fn classify(product: &[SrcFile], reg: &Registry) -> Class {
    let mut class = Class::default();
    let spec_idents: HashSet<&str> = reg.specs.iter().map(|s| s.ident.as_str()).collect();
    let helpers = find_helpers(product);
    let helper_progs = helper_programs(product, &helpers);

    for (fi, f) in product.iter().enumerate() {
        if !in_scope(&f.rel) || is_registry_path(&f.rel) {
            continue;
        }
        let b = f.active.as_bytes();
        for (ii, it) in f.items.iter().enumerate() {
            if !it.has_body {
                continue;
            }
            // Trailer-magic evidence is fn-independent.
            for t in &reg.trailers {
                for q in ident_occurrences(b, it.body_open, it.end, &t.ident) {
                    let prev = prev_nonws(b, q);
                    let is_cmp = prev.is_some_and(|(j, c)| {
                        c == b'=' && j > 0 && (b[j - 1] == b'!' || b[j - 1] == b'=')
                    });
                    if is_cmp {
                        class.trailer_reads.push((t.ident.clone(), fi, q));
                        class.reader_fns.insert((fi, ii));
                    } else if prev.is_some_and(|(_, c)| c == b'(' || c == b'&') {
                        class.trailer_writes.push((t.ident.clone(), fi, q));
                    }
                }
            }
            if sig_has_spec(f, it) && helpers.kind.contains_key(&(fi, ii)) {
                // Generic helpers are classified through their callers; they
                // still count as parse-side code for R16.
                if helpers.kind[&(fi, ii)] == Kind::Reader {
                    class.reader_fns.insert((fi, ii));
                }
                continue;
            }
            let evs = scan_evidence(product, fi, it, &spec_idents, &helpers);
            if evs.is_empty() {
                continue;
            }
            for &kind in &[Kind::Writer, Kind::Reader] {
                let mine: Vec<&Ev> = evs.iter().filter(|e| e.kind == kind).collect();
                if mine.is_empty() {
                    continue;
                }
                let mut specs: Vec<&str> = mine.iter().map(|e| e.spec.as_str()).collect();
                specs.sort_unstable();
                specs.dedup();
                let multi = specs.len() > 1;
                // Anchor on the first cursor/delegation evidence; a fn with
                // only hand-rolled evidence stays existence-only.
                let anchored = mine.iter().find(|e| e.anchor_end.is_some());
                let (prog, hand, at) = match anchored {
                    Some(e) if !multi => {
                        let (init, init_complete) = match e.splice {
                            Some(key) => {
                                let hp = &helper_progs[&key];
                                (hp.toks.clone(), hp.complete)
                            }
                            None => (vec![Tok::Magic], true),
                        };
                        let prog = extract(
                            product,
                            fi,
                            it,
                            e.anchor_end.unwrap(),
                            init,
                            init_complete,
                            e.cursor.as_deref(),
                            &helpers,
                            &helper_progs,
                        );
                        (prog, false, e.at)
                    }
                    Some(e) => (Program::opaque(), false, e.at),
                    None => (Program::opaque(), true, mine[0].at),
                };
                for s in &specs {
                    let party = Party {
                        file: fi,
                        item: ii,
                        prog: prog.clone(),
                        multi,
                        hand,
                        at,
                    };
                    match kind {
                        Kind::Writer => class.writers.entry((*s).to_string()).or_default().push(party),
                        Kind::Reader => {
                            class.reader_fns.insert((fi, ii));
                            class.readers.entry((*s).to_string()).or_default().push(party)
                        }
                    }
                }
            }
        }
    }
    class
}

fn helper_programs(product: &[SrcFile], helpers: &Helpers) -> HashMap<(usize, usize), Program> {
    let mut memo = HashMap::new();
    let keys: Vec<(usize, usize)> = helpers.kind.keys().copied().collect();
    for key in keys {
        compute_helper(product, helpers, key, &mut memo, 0);
    }
    memo
}

fn compute_helper(
    product: &[SrcFile],
    helpers: &Helpers,
    key: (usize, usize),
    memo: &mut HashMap<(usize, usize), Program>,
    depth: usize,
) -> Program {
    if let Some(p) = memo.get(&key) {
        return p.clone();
    }
    // Guard against recursion between helpers.
    memo.insert(key, Program::opaque());
    if depth > 4 {
        return Program::opaque();
    }
    let (fi, ii) = key;
    let f = &product[fi];
    let it = &f.items[ii];
    let b = f.active.as_bytes();
    let (lo, hi) = (it.body_open, it.end);

    // Anchor: own magic call, own expect_magic call, or first delegated
    // helper call — whichever comes first.
    let mut anchor: Option<(usize, usize, Option<String>, Option<(usize, usize)>)> = None;
    if let Some(p) = find_sub(b, lo, hi, b".magic(") {
        let close = match_paren(b, p + 6);
        let cur = Some(ident_ending_at(b, p).to_string()).filter(|c| !c.is_empty());
        anchor = Some((p, close + 1, cur, None));
    }
    if let Some(p) = find_sub(b, lo, hi, b"expect_magic(") {
        if anchor.as_ref().is_none_or(|a| p < a.0) {
            let close = match_paren(b, p + 12);
            let cur = (p > 0 && b[p - 1] == b'.')
                .then(|| ident_ending_at(b, p - 1).to_string())
                .filter(|c| !c.is_empty());
            anchor = Some((p, close + 1, cur, None));
        }
    }
    for name in helpers.by_name.keys() {
        for q in ident_occurrences(b, lo, hi, name) {
            if anchor.as_ref().is_some_and(|a| q >= a.0) {
                continue;
            }
            let Some((op, b'(')) = next_nonws(b, q + name.len()) else {
                continue;
            };
            let Some(hkey) = helpers.resolve(name, crate_of(&f.rel), product) else {
                continue;
            };
            if hkey == key {
                continue;
            }
            let close = match_paren(b, op);
            anchor = Some((q, close + 1, cursor_arg(b, op + 1, close), Some(hkey)));
        }
    }
    let Some((_, anchor_end, cursor, splice)) = anchor else {
        return Program::opaque();
    };
    let (init, init_complete) = match splice {
        Some(hkey) => {
            let hp = compute_helper(product, helpers, hkey, memo, depth + 1);
            (hp.toks, hp.complete)
        }
        None => (vec![Tok::Magic], true),
    };
    let prog = extract_inner(
        product,
        fi,
        it,
        anchor_end,
        init,
        init_complete,
        cursor.as_deref(),
        helpers,
        memo,
        depth,
    );
    memo.insert(key, prog.clone());
    prog
}

/// Body-brace spans of outermost loops in `[from, to)`.
fn loop_spans(b: &[u8], from: usize, to: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = from;
    while i < to {
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let id = ident_at(b, i);
        if id == "for" || id == "while" || id == "loop" {
            let mut j = i + id.len();
            let mut depth = 0isize;
            while j < to {
                match b[j] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => break,
                    b';' if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < to && b[j] == b'{' {
                let close = match_brace(b, j);
                spans.push((j, close));
                i = close + 1;
                continue;
            }
        }
        i += id.len().max(1);
    }
    spans
}

#[allow(clippy::too_many_arguments)]
fn extract(
    product: &[SrcFile],
    fi: usize,
    it: &FnItem,
    anchor_end: usize,
    init: Vec<Tok>,
    init_complete: bool,
    cursor: Option<&str>,
    helpers: &Helpers,
    helper_progs: &HashMap<(usize, usize), Program>,
) -> Program {
    let mut memo = helper_progs.clone();
    extract_inner(
        product,
        fi,
        it,
        anchor_end,
        init,
        init_complete,
        cursor,
        helpers,
        &mut memo,
        0,
    )
}

/// Replays the cursor operations from `anchor_end` to the end of the fn
/// body into an ordered field program.
#[allow(clippy::too_many_arguments)]
fn extract_inner(
    product: &[SrcFile],
    fi: usize,
    it: &FnItem,
    anchor_end: usize,
    init: Vec<Tok>,
    init_complete: bool,
    cursor: Option<&str>,
    helpers: &Helpers,
    memo: &mut HashMap<(usize, usize), Program>,
    depth: usize,
) -> Program {
    let f = &product[fi];
    let b = f.active.as_bytes();
    let end = it.end;
    let spans = loop_spans(b, anchor_end, end);
    let mut toks = init;
    let mut complete = init_complete;
    let mut cur_span: Option<usize> = None;
    let mut i = anchor_end;
    'scan: while i < end {
        let c = b[i];
        if c == b'.' {
            for &(pat, tag) in OP_TAGS {
                if b[i..].starts_with(pat.as_bytes()) {
                    let sp = spans.iter().position(|&(o, cl)| i > o && i < cl);
                    match sp {
                        Some(s) if cur_span == Some(s) => {
                            if let Some(Tok::Group(v)) = toks.last_mut() {
                                v.push(tag);
                            }
                        }
                        Some(s) => {
                            toks.push(Tok::Group(vec![tag]));
                            cur_span = Some(s);
                        }
                        None => {
                            toks.push(Tok::Op(tag));
                            cur_span = None;
                        }
                    }
                    i += pat.len();
                    continue 'scan;
                }
            }
            if STOP_CALLS.iter().any(|p| b[i..].starts_with(p.as_bytes())) {
                complete = false;
                break;
            }
            i += 1;
            continue;
        }
        if !ident_starts_at(b, i) {
            i += 1;
            continue;
        }
        let id = ident_at(b, i);
        if id == "match" {
            complete = false;
            break;
        }
        // Mid-program delegation: splice the helper's field program.
        if helpers.by_name.contains_key(id) {
            if let Some((op, b'(')) = next_nonws(b, i + id.len()) {
                let is_def = prev_nonws(b, i)
                    .is_some_and(|(j, ch)| is_ident(ch) && ident_ending_at(b, j + 1) == "fn");
                if !is_def {
                    if let Some(key) = helpers.resolve(id, crate_of(&f.rel), product) {
                        if depth <= 4 {
                            let hp = compute_helper(product, helpers, key, memo, depth + 1);
                            toks.extend(hp.toks);
                            complete &= hp.complete;
                            i = match_paren(b, op) + 1;
                            cur_span = None;
                            continue;
                        }
                    }
                }
            }
        }
        // The cursor escaping into non-field code (moved, passed by name,
        // matched on) ends the replayable prefix.
        if let Some(cur) = cursor {
            if id == cur && !matches!(next_nonws(b, i + id.len()), Some((_, b'.'))) {
                complete = false;
                break;
            }
        }
        i += id.len().max(1);
    }
    Program { toks, complete }
}

// ---------------------------------------------------------------------------
// R14: pairing and field replay
// ---------------------------------------------------------------------------

fn star_normalize(toks: &[Tok]) -> Vec<Tok> {
    let single = |t: &Tok| match t {
        Tok::Op(x) => Some(*x),
        Tok::Group(v) if v.len() == 1 => Some(v[0]),
        _ => None,
    };
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(tag) = single(&toks[i]) {
            let mut j = i;
            let mut has_group = false;
            while j < toks.len() && single(&toks[j]) == Some(tag) {
                has_group |= matches!(toks[j], Tok::Group(_));
                j += 1;
            }
            if has_group {
                out.push(Tok::Star(tag));
                i = j;
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

fn tok_match(a: &Tok, b: &Tok) -> bool {
    a == b
        || matches!(
            (a, b),
            (Tok::Star(t), Tok::Op(u)) | (Tok::Op(u), Tok::Star(t)) if t == u
        )
}

fn desc(t: &Tok) -> String {
    match t {
        Tok::Magic => "the magic/version prefix".to_string(),
        Tok::Op(x) => format!("`{x}`"),
        Tok::Group(v) => format!("a repeated group of `{}`", v.join("`,`")),
        Tok::Star(x) => format!("a `{x}` run"),
    }
}

fn r14(product: &[SrcFile], reg: &Registry, class: &Class, out: &mut Vec<FormatFinding>) {
    let empty = Vec::new();
    for spec in &reg.specs {
        let ws = class.writers.get(&spec.ident).unwrap_or(&empty);
        let rs = class.readers.get(&spec.ident).unwrap_or(&empty);
        if ws.is_empty() && rs.is_empty() {
            continue;
        }
        if rs.is_empty() {
            for w in ws {
                let f = &product[w.file];
                out.push(FormatFinding {
                    rule: "R14",
                    file: f.rel.clone(),
                    line: f.items[w.item].line,
                    message: format!(
                        "format `{}` is serialized by `{}` but no parser in the workspace reads \
                         it (write-without-read)",
                        spec.ident, f.items[w.item].name
                    ),
                });
            }
            continue;
        }
        if ws.is_empty() {
            for r in rs {
                let f = &product[r.file];
                out.push(FormatFinding {
                    rule: "R14",
                    file: f.rel.clone(),
                    line: f.items[r.item].line,
                    message: format!(
                        "format `{}` is parsed by `{}` but no serializer in the workspace writes \
                         it (read-without-write)",
                        spec.ident, f.items[r.item].name
                    ),
                });
            }
            continue;
        }
        for w in ws.iter().filter(|p| !p.multi) {
            for r in rs.iter().filter(|p| !p.multi) {
                replay(product, &spec.ident, w, r, out);
            }
        }
    }
    // Trailer magics must be both emitted and checked.
    for t in &reg.trailers {
        let wr = class.trailer_writes.iter().find(|(n, _, _)| n == &t.ident);
        let rd = class.trailer_reads.iter().find(|(n, _, _)| n == &t.ident);
        match (wr, rd) {
            (Some((_, fi, q)), None) => out.push(FormatFinding {
                rule: "R14",
                file: product[*fi].rel.clone(),
                line: product[*fi].lines.line_of(*q),
                message: format!(
                    "trailer magic `{}` is emitted here but never checked by any parser",
                    t.ident
                ),
            }),
            (None, Some((_, fi, q))) => out.push(FormatFinding {
                rule: "R14",
                file: product[*fi].rel.clone(),
                line: product[*fi].lines.line_of(*q),
                message: format!(
                    "trailer magic `{}` is checked here but never emitted by any serializer",
                    t.ident
                ),
            }),
            _ => {}
        }
    }
}

fn replay(product: &[SrcFile], spec: &str, w: &Party, r: &Party, out: &mut Vec<FormatFinding>) {
    let wf = &product[w.file];
    let rf = &product[r.file];
    let wname = &wf.items[w.item].name;
    let rname = &rf.items[r.item].name;
    let a = star_normalize(&w.prog.toks);
    let bt = star_normalize(&r.prog.toks);
    let n = a.len().min(bt.len());
    for k in 0..n {
        if !tok_match(&a[k], &bt[k]) {
            out.push(FormatFinding {
                rule: "R14",
                file: rf.rel.clone(),
                line: rf.items[r.item].line,
                message: format!(
                    "format `{spec}`: parser `{rname}` reads {} at field {k} where serializer \
                     `{wname}` ({}) emits {}",
                    desc(&bt[k]),
                    wf.rel,
                    desc(&a[k]),
                ),
            });
            return;
        }
    }
    if w.prog.complete && r.prog.complete && a.len() != bt.len() {
        if a.len() > bt.len() {
            out.push(FormatFinding {
                rule: "R14",
                file: wf.rel.clone(),
                line: wf.items[w.item].line,
                message: format!(
                    "format `{spec}`: serializer `{wname}` emits {} trailing field(s) that \
                     parser `{rname}` ({}) never reads",
                    a.len() - n,
                    rf.rel,
                ),
            });
        } else {
            out.push(FormatFinding {
                rule: "R14",
                file: rf.rel.clone(),
                line: rf.items[r.item].line,
                message: format!(
                    "format `{spec}`: parser `{rname}` reads {} trailing field(s) that \
                     serializer `{wname}` ({}) never emits",
                    bt.len() - n,
                    wf.rel,
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R15: version discipline
// ---------------------------------------------------------------------------

fn r15_versions(product: &[SrcFile], class: &Class, out: &mut Vec<FormatFinding>) {
    for (spec, parties) in &class.readers {
        for p in parties.iter().filter(|p| p.hand && !p.multi) {
            let f = &product[p.file];
            let it = &f.items[p.item];
            let b = f.active.as_bytes();
            let (lo, hi) = (p.at, it.end);
            // Version evidence: an UnsupportedVersion construction or a
            // `SPEC.version` comparison after the magic check.
            let mut v_off = ident_occurrences(b, lo, hi, "UnsupportedVersion")
                .first()
                .copied();
            let vpath = format!("{spec}.version");
            if let Some(q) = find_sub(b, lo, hi, vpath.as_bytes()) {
                v_off = Some(v_off.map_or(q, |v| v.min(q)));
            }
            let count_off = [
                &b"u16::from_le_bytes("[..],
                &b"u32::from_le_bytes("[..],
                &b"u64::from_le_bytes("[..],
            ]
            .iter()
            .filter_map(|pat| find_sub(b, lo, hi, pat))
            .min();
            match v_off {
                None => out.push(FormatFinding {
                    rule: "R15",
                    file: f.rel.clone(),
                    line: it.line,
                    message: format!(
                        "parser `{}` checks the `{spec}` magic but never range-checks a version \
                         byte (no UnsupportedVersion path)",
                        it.name
                    ),
                }),
                Some(v) => {
                    if let Some(c) = count_off {
                        if c < v {
                            out.push(FormatFinding {
                                rule: "R15",
                                file: f.rel.clone(),
                                line: f.lines.line_of(c),
                                message: format!(
                                    "parser `{}` decodes a count/length field before validating \
                                     the `{spec}` version byte",
                                    it.name
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

fn r15_literals(product: &[SrcFile], reg: &Registry, out: &mut Vec<FormatFinding>) {
    // (value, rank, ident, file rel, line) — registry entries rank first so
    // a collision blames the stray definition, not the registry.
    let mut values: Vec<(u64, u8, String, String, usize)> = Vec::new();
    for s in reg.specs.iter().chain(&reg.trailers) {
        if let Some(v) = s.value {
            values.push((v, 0, s.ident.clone(), s.file.clone(), s.line));
        }
    }
    for f in product {
        if is_registry_path(&f.rel) {
            continue;
        }
        let b = f.active.as_bytes();
        // Stray `const *MAGIC*` definitions.
        let mut i = 0;
        while i < b.len() {
            if !ident_starts_at(b, i) {
                i += 1;
                continue;
            }
            let id = ident_at(b, i);
            if id == "const" {
                if let Some((ty, def)) = parse_const_decl(f, i) {
                    if def.ident.contains("MAGIC") && ty != "FormatSpec" {
                        out.push(FormatFinding {
                            rule: "R15",
                            file: f.rel.clone(),
                            line: def.line,
                            message: format!(
                                "magic constant `{}` defined outside the cliz-format registry",
                                def.ident
                            ),
                        });
                        if let Some(v) = def.value {
                            values.push((v, 1, def.ident, f.rel.clone(), def.line));
                        }
                    }
                }
            } else if id == "FormatSpec" {
                // A `FormatSpec { … magic: 0x…, … }` literal outside the
                // registry. Skip type positions: `struct FormatSpec` and
                // `-> FormatSpec {` (where the `{` is a fn body, not a literal).
                let is_type_pos = prev_nonws(b, i).is_some_and(|(j, c)| {
                    (is_ident(c) && ident_ending_at(b, j + 1) == "struct") || c == b'>'
                });
                if !is_type_pos {
                    if let Some((_, b'{')) = next_nonws(b, i + id.len()) {
                        if let Some(v) = spec_magic_value(b, i + id.len()) {
                            let line = f.lines.line_of(i);
                            out.push(FormatFinding {
                                rule: "R15",
                                file: f.rel.clone(),
                                line,
                                message: format!(
                                    "`FormatSpec` literal (magic {v:#010x}) constructed outside \
                                     the cliz-format registry"
                                ),
                            });
                            values.push((v, 1, "<literal>".to_string(), f.rel.clone(), line));
                        }
                    }
                }
            }
            i += id.len().max(1);
        }
    }
    // Duplicate magic values across everything collected.
    values.sort_by(|x, y| (x.0, x.1, x.4).cmp(&(y.0, y.1, y.4)));
    for win in values.windows(2) {
        if win[0].0 == win[1].0 {
            out.push(FormatFinding {
                rule: "R15",
                file: win[1].3.clone(),
                line: win[1].4,
                message: format!(
                    "duplicate magic value {:#010x}: `{}` collides with `{}` ({})",
                    win[1].0, win[1].2, win[0].2, win[0].3
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R16: parser error-surface coverage
// ---------------------------------------------------------------------------

/// Callees too generic to follow when building the parser-fn set: chasing
/// every `new`/`clone` in the workspace would taint constructors that have
/// nothing to do with parsing.
const NOISE_CALLEES: &[&str] = &[
    "new",
    "default",
    "clone",
    "with_capacity",
    "from_vec",
    "to_vec",
    "len",
    "is_empty",
];

/// Substrings that mark a fn as a decode entry point.
const ENTRY_SEEDS: &[&str] = &["decode", "decompress", "parse", "open", "load", "read"];

fn r16(
    product: &[SrcFile],
    test_texts: &[(String, String)],
    class: &Class,
    out: &mut Vec<FormatFinding>,
) {
    // 1. Error enums defined in scope.
    struct ErrEnum {
        name: String,
        file: usize,
        variants: Vec<(String, usize)>,
    }
    let mut enums: Vec<ErrEnum> = Vec::new();
    for (fi, f) in product.iter().enumerate() {
        if !in_scope(&f.rel) {
            continue;
        }
        let b = f.active.as_bytes();
        for q in ident_occurrences(b, 0, b.len(), "enum") {
            let Some((j, c)) = next_nonws(b, q + 4) else {
                continue;
            };
            if !is_ident(c) {
                continue;
            }
            let name = ident_at(b, j).to_string();
            if !name.contains("Error") {
                continue;
            }
            let Some((open, b'{')) = next_nonws(b, j + name.len()) else {
                continue;
            };
            let close = match_brace(b, open);
            enums.push(ErrEnum {
                name,
                file: fi,
                variants: parse_variants(b, open, close, &f.lines),
            });
        }
    }
    if enums.is_empty() {
        return;
    }

    // 2. Construction sites in product code: `Enum::Variant` not used as a
    //    match pattern. Key: (enum idx, variant idx) → (file, offset).
    let mut sites: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for (fi, f) in product.iter().enumerate() {
        if !in_scope(&f.rel) {
            continue;
        }
        let b = f.active.as_bytes();
        for (ei, e) in enums.iter().enumerate() {
            for q in ident_occurrences(b, 0, b.len(), &e.name) {
                let after = q + e.name.len();
                if !b[after..].starts_with(b"::") {
                    continue;
                }
                let Some(vn) = b.get(after + 2).copied().filter(|&c| is_ident(c)) else {
                    continue;
                };
                let _ = vn;
                let vname = ident_at(b, after + 2);
                let Some(vi) = e.variants.iter().position(|(v, _)| v == vname) else {
                    continue;
                };
                if !is_match_pattern(b, after + 2 + vname.len()) {
                    sites.entry((ei, vi)).or_default().push((fi, q));
                }
            }
        }
    }

    // 3. Dead variants: never constructed anywhere in product code.
    for (ei, e) in enums.iter().enumerate() {
        for (vi, (vname, vline)) in e.variants.iter().enumerate() {
            if !sites.contains_key(&(ei, vi)) {
                out.push(FormatFinding {
                    rule: "R16",
                    file: product[e.file].rel.clone(),
                    line: *vline,
                    message: format!(
                        "error variant `{}::{vname}` is never constructed in product code \
                         (dead error surface)",
                        e.name
                    ),
                });
            }
        }
    }

    // 4. Parser-fn set: reader-classified fns plus everything they call
    //    (minus ubiquitous constructor names), plus `From` conversions.
    let mut name_index: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    for (fi, f) in product.iter().enumerate() {
        if !in_scope(&f.rel) {
            continue;
        }
        for (ii, it) in f.items.iter().enumerate() {
            name_index.entry(it.name.as_str()).or_default().push((fi, ii));
        }
    }
    let bfs = |roots: Vec<(usize, usize)>, noise: &[&str]| -> HashSet<(usize, usize)> {
        let mut seen: HashSet<(usize, usize)> = roots.iter().copied().collect();
        let mut queue: Vec<(usize, usize)> = roots;
        while let Some((fi, ii)) = queue.pop() {
            for call in &product[fi].items[ii].calls {
                if noise.contains(&call.callee.as_str()) {
                    continue;
                }
                if let Some(targets) = name_index.get(call.callee.as_str()) {
                    for &t in targets {
                        if seen.insert(t) {
                            queue.push(t);
                        }
                    }
                }
            }
        }
        seen
    };
    let mut parser_fns = bfs(class.reader_fns.iter().copied().collect(), NOISE_CALLEES);
    for (fi, f) in product.iter().enumerate() {
        if !in_scope(&f.rel) {
            continue;
        }
        for (ii, it) in f.items.iter().enumerate() {
            if it.name == "from" {
                parser_fns.insert((fi, ii));
            }
        }
    }

    // 5. Entry reachability: BFS (no noise filter — permissive) from fns
    //    whose name marks them as a decode entry point.
    let entries: Vec<(usize, usize)> = product
        .iter()
        .enumerate()
        .filter(|(_, f)| in_scope(&f.rel))
        .flat_map(|(fi, f)| {
            f.items.iter().enumerate().filter_map(move |(ii, it)| {
                let lname = it.name.to_ascii_lowercase();
                ENTRY_SEEDS
                    .iter()
                    .any(|s| lname.contains(s))
                    .then_some((fi, ii))
            })
        })
        .collect();
    let reachable = bfs(entries, &[]);

    let fn_containing = |fi: usize, off: usize| -> Option<usize> {
        product[fi]
            .items
            .iter()
            .position(|it| it.has_body && off >= it.start && off <= it.end)
    };

    // 6. Parser-constructed variants need a test assertion and a decode
    //    path that can actually reach them.
    for (ei, e) in enums.iter().enumerate() {
        for (vi, (vname, vline)) in e.variants.iter().enumerate() {
            let Some(var_sites) = sites.get(&(ei, vi)) else {
                continue;
            };
            let in_parser: Vec<&(usize, usize)> = var_sites
                .iter()
                .filter(|(fi, off)| {
                    fn_containing(*fi, *off).is_some_and(|ii| parser_fns.contains(&(*fi, ii)))
                })
                .collect();
            if in_parser.is_empty() {
                continue;
            }
            let token = format!("{}::{vname}", e.name);
            let mut evidenced = test_texts.iter().any(|(_, text)| text.contains(&token));
            if !evidenced {
                // Unit-test regions of product files: present in the
                // stripped text but blanked out of the active text.
                'files: for f in product {
                    let sb = f.stripped.as_bytes();
                    let ab = f.active.as_bytes();
                    for q in ident_occurrences(sb, 0, sb.len(), &e.name) {
                        if sb[q + e.name.len()..].starts_with(b"::")
                            && ident_at(sb, q + e.name.len() + 2) == vname
                            && ab.get(q) != Some(&sb[q])
                        {
                            evidenced = true;
                            break 'files;
                        }
                    }
                }
            }
            if !evidenced {
                out.push(FormatFinding {
                    rule: "R16",
                    file: product[e.file].rel.clone(),
                    line: *vline,
                    message: format!(
                        "parser-constructed error variant `{}::{vname}` is never asserted by \
                         any test (untested corruption path)",
                        e.name
                    ),
                });
            }
            let is_reachable = in_parser.iter().any(|(fi, off)| {
                fn_containing(*fi, *off).is_some_and(|ii| {
                    reachable.contains(&(*fi, ii)) || product[*fi].items[ii].name == "from"
                })
            });
            if !is_reachable {
                out.push(FormatFinding {
                    rule: "R16",
                    file: product[e.file].rel.clone(),
                    line: *vline,
                    message: format!(
                        "error variant `{}::{vname}` is constructed only in parser code \
                         unreachable from any decode entry point",
                        e.name
                    ),
                });
            }
        }
    }
}

/// Variant names and lines of an enum body `{ … }`.
fn parse_variants(b: &[u8], open: usize, close: usize, lines: &Lines) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        let Some((j, c)) = next_nonws(b, i) else {
            break;
        };
        if j >= close {
            break;
        }
        if c == b'#' {
            // Attribute: skip `#[…]`.
            if let Some(ob) = find_byte(b, j, b'[') {
                i = match_delim(b, ob, b'[', b']') + 1;
                continue;
            }
        }
        if is_ident(c) {
            let name = ident_at(b, j).to_string();
            out.push((name.clone(), lines.line_of(j)));
            let mut k = j + name.len();
            // Skip payload/discriminant to the variant-separating comma.
            while k < close && b[k] != b',' {
                match b[k] {
                    b'(' => k = match_paren(b, k) + 1,
                    b'{' => k = match_brace(b, k) + 1,
                    b'[' => k = match_delim(b, k, b'[', b']') + 1,
                    _ => k += 1,
                }
            }
            i = k + 1;
            continue;
        }
        i = j + 1;
    }
    out
}

/// True when the `Enum::Variant` occurrence ending just before
/// `after_variant` is a match pattern (followed, past any payload, by `=>`
/// or a `|` alternation).
fn is_match_pattern(b: &[u8], after_variant: usize) -> bool {
    let mut q = after_variant;
    if let Some((p, c)) = next_nonws(b, q) {
        if c == b'(' {
            q = match_paren(b, p) + 1;
        } else if c == b'{' {
            q = match_brace(b, p) + 1;
        }
    }
    match next_nonws(b, q) {
        Some((e, b'=')) => b.get(e + 1) == Some(&b'>'),
        Some((_, b'|')) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_literals_parse() {
        assert_eq!(parse_number(b" 0x434C_495A ", 0), Some(0x434C_495A));
        assert_eq!(parse_number(b" 12_345,", 0), Some(12_345));
        assert_eq!(parse_number(b" 7u32", 0), Some(7));
        assert_eq!(parse_number(b" xyz", 0), None);
    }

    #[test]
    fn star_normalization_merges_homogeneous_runs() {
        // dims loop + adjacent u64 fields collapse into one run on both the
        // "loop then field" and "field then loop" spellings.
        let a = vec![
            Tok::Magic,
            Tok::Op("u8"),
            Tok::Group(vec!["u64"]),
            Tok::Op("u64"),
            Tok::Op("u32"),
        ];
        let b = vec![
            Tok::Magic,
            Tok::Op("u8"),
            Tok::Op("u64"),
            Tok::Group(vec!["u64"]),
            Tok::Op("u32"),
        ];
        assert_eq!(star_normalize(&a), star_normalize(&b));
        assert_eq!(
            star_normalize(&a),
            vec![Tok::Magic, Tok::Op("u8"), Tok::Star("u64"), Tok::Op("u32")]
        );
        // Heterogeneous groups survive untouched.
        let c = vec![Tok::Group(vec!["str16", "u64"])];
        assert_eq!(star_normalize(&c), c);
    }

    #[test]
    fn star_matches_plain_op() {
        assert!(tok_match(&Tok::Star("u64"), &Tok::Op("u64")));
        assert!(!tok_match(&Tok::Star("u64"), &Tok::Op("u32")));
        assert!(!tok_match(&Tok::Op("u8"), &Tok::Op("u16")));
    }

    #[test]
    fn registry_and_variant_parsing() {
        let reg_src = r#"
pub struct FormatSpec { pub name: &'static str, pub magic: u32, pub version: u8 }
pub const AAA1: FormatSpec = FormatSpec { name: "a", magic: 0x4141_4131, version: 1 };
pub const BBB1: FormatSpec = FormatSpec { name: "b", magic: 0x4242_4231, version: 2 };
pub const AAA1_TRAILER_MAGIC: u32 = 0x31414141;
"#;
        let stripped = strip(reg_src).code;
        let active = blank_test_items(&stripped);
        let lines = Lines::new(&active);
        let f = SrcFile {
            rel: "crates/format/src/lib.rs".into(),
            items: items::parse_items(&active, &lines),
            active,
            stripped,
            lines,
        };
        let reg = parse_registry(std::slice::from_ref(&f));
        assert_eq!(reg.specs.len(), 2);
        assert_eq!(reg.specs[0].ident, "AAA1");
        assert_eq!(reg.specs[0].value, Some(0x4141_4131));
        assert_eq!(reg.trailers.len(), 1);
        assert_eq!(reg.trailers[0].value, Some(0x3141_4141));

        let enum_src = "enum DemoError { BadMagic, Corrupt(&'static str), Io { code: i32 }, }";
        let s = strip(enum_src).code;
        let b = s.as_bytes();
        let open = s.find('{').unwrap();
        let lines = Lines::new(&s);
        let vars = parse_variants(b, open, match_brace(b, open), &lines);
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["BadMagic", "Corrupt", "Io"]);
    }

    #[test]
    fn match_patterns_are_not_constructions() {
        let src = "match e { DemoError::BadMagic => 1, DemoError::Corrupt(_) => 2, };\nlet x = DemoError::BadMagic;";
        let b = src.as_bytes();
        // First occurrence: pattern. Last: construction.
        let first = src.find("DemoError::BadMagic").unwrap();
        let last = src.rfind("DemoError::BadMagic").unwrap();
        assert!(is_match_pattern(b, first + "DemoError::BadMagic".len()));
        assert!(!is_match_pattern(b, last + "DemoError::BadMagic".len()));
        let tup = src.find("DemoError::Corrupt").unwrap();
        assert!(is_match_pattern(b, tup + "DemoError::Corrupt".len()));
    }

    #[test]
    fn loop_spans_are_outermost() {
        let src = "fn f() { for i in 0..3 { while x { a(); } b(); } c(); }";
        let b = src.as_bytes();
        let spans = loop_spans(b, 0, b.len());
        assert_eq!(spans.len(), 1);
        let (o, c) = spans[0];
        assert!(src[o..c].contains("while"));
    }
}
