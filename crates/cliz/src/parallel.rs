//! Parallel compression entry points.
//!
//! Climate campaigns compress many independent fields (ensemble members,
//! variables, snapshots). CliZ's interpolation is inherently sequential
//! *within* a field, so the parallelism lives at two coarser grains:
//!
//! * **across fields** — [`compress_many`] / [`decompress_many`] fan a batch
//!   over the rayon thread pool with one shared configuration (the paper's
//!   Fig. 13 farm granularity);
//! * **within one chunked container** — [`compress_chunked_threads`] /
//!   [`decompress_chunked_threads`] split a single field's slabs across a
//!   scoped worker pool with LPT load balancing, producing byte-identical
//!   containers for every worker count (see [`cliz_core::chunked`]).

use crate::{BaselineError, Compressor};
use cliz_grid::{Grid, MaskMap};
use cliz_quant::ErrorBound;
use rayon::prelude::*;

pub use cliz_core::chunked::{
    compress_chunked_with_threads as compress_chunked_threads,
    decompress_chunked_with_threads as decompress_chunked_threads,
};

/// One compression job: a field, its optional mask, and its bound.
pub struct Job<'a> {
    pub data: &'a Grid<f32>,
    pub mask: Option<&'a MaskMap>,
    pub bound: ErrorBound,
}

/// Compresses every job in parallel, preserving order.
pub fn compress_many(
    compressor: &dyn Compressor,
    jobs: &[Job<'_>],
) -> Vec<Result<Vec<u8>, BaselineError>> {
    jobs.par_iter()
        .map(|job| compressor.compress(job.data, job.mask, job.bound))
        .collect()
}

/// Decompresses every stream in parallel, preserving order. `masks[i]` must
/// match what `streams[i]` was compressed with; a batch whose two slices
/// disagree in length is rejected up front rather than silently zip-truncated
/// (or panicked on) — batch assembly bugs surface as an error the caller can
/// attribute, not a crash inside the pool.
pub fn decompress_many(
    compressor: &dyn Compressor,
    streams: &[Vec<u8>],
    masks: &[Option<&MaskMap>],
) -> Result<Vec<Result<Grid<f32>, BaselineError>>, BaselineError> {
    if streams.len() != masks.len() {
        return Err(BaselineError::Backend(format!(
            "batch shape mismatch: {} stream(s) but {} mask slot(s)",
            streams.len(),
            masks.len()
        )));
    }
    Ok(streams
        .par_iter()
        .zip(masks.par_iter())
        .map(|(bytes, mask)| compressor.decompress(bytes, *mask))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cliz;
    use cliz_grid::Shape;

    fn field(seed: usize) -> Grid<f32> {
        Grid::from_fn(Shape::new(&[24, 24]), |c| {
            ((c[0] + seed) as f32 * 0.2).sin() + (c[1] as f32 * 0.3).cos()
        })
    }

    #[test]
    fn batch_matches_sequential() {
        let fields: Vec<Grid<f32>> = (0..8).map(field).collect();
        let jobs: Vec<Job> = fields
            .iter()
            .map(|f| Job {
                data: f,
                mask: None,
                bound: ErrorBound::Abs(1e-3),
            })
            .collect();
        let cliz = Cliz::new();
        let batch = compress_many(&cliz, &jobs);
        for (f, result) in fields.iter().zip(&batch) {
            let sequential = cliz.compress(f, None, ErrorBound::Abs(1e-3)).unwrap();
            assert_eq!(result.as_ref().unwrap(), &sequential, "order or determinism broken");
        }
        let streams: Vec<Vec<u8>> = batch.into_iter().map(|r| r.unwrap()).collect();
        let masks = vec![None; streams.len()];
        let decoded = decompress_many(&cliz, &streams, &masks).unwrap();
        for (f, d) in fields.iter().zip(decoded) {
            let d = d.unwrap();
            for (a, b) in f.as_slice().iter().zip(d.as_slice()) {
                assert!((a - b).abs() <= 1e-3 + 1e-9);
            }
        }
    }

    #[test]
    fn errors_are_per_job() {
        let good = field(0);
        let cliz = Cliz::new();
        let stream = cliz.compress(&good, None, ErrorBound::Abs(1e-3)).unwrap();
        let garbage = vec![1u8, 2, 3];
        let results = decompress_many(&cliz, &[stream, garbage], &[None, None]).unwrap();
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn mismatched_batch_is_an_error_not_a_panic() {
        let cliz = Cliz::new();
        let err = decompress_many(&cliz, &[vec![0u8]], &[None, None]).unwrap_err();
        assert!(err.to_string().contains("batch shape mismatch"), "{err}");
    }
}
