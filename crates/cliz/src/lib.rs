//! # CliZ
//!
//! Error-bounded lossy compression optimized for climate datasets — a Rust
//! reproduction of *"CliZ: Optimizing Lossy Compression for Climate Datasets
//! with Adaptive Fine-tuned Data Prediction"* (IPDPS 2024).
//!
//! This facade re-exports the whole workspace under one roof:
//!
//! * [`compress`] / [`decompress`] / [`autotune()`](autotune()) — the CliZ compressor;
//! * [`Cliz`] — an adapter implementing the same [`Compressor`] trait as the
//!   bundled SZ3 / ZFP / SPERR / QoZ baselines, for uniform sweeps;
//! * [`grid`], [`data`], [`metrics`], [`transfer`] — substrates: containers,
//!   synthetic CESM-like datasets, quality metrics, WAN simulation.
//!
//! ```
//! use cliz::prelude::*;
//!
//! // A small synthetic sea-surface-height field (land is masked).
//! let field = cliz::data::ssh(&[48, 40, 60], 42);
//! let config = PipelineConfig::default_for(3);
//! let bytes = cliz::compress(
//!     &field.data,
//!     field.mask.as_ref(),
//!     ErrorBound::Rel(1e-3),
//!     &config,
//! )
//! .unwrap();
//! let recon = cliz::decompress(&bytes, field.mask.as_ref()).unwrap();
//! let psnr = cliz::metrics::psnr(
//!     field.data.as_slice(),
//!     recon.as_slice(),
//!     field.mask.as_ref(),
//! );
//! assert!(psnr > 50.0);
//! ```

pub use cliz_core::{
    autotune, autotune_fast, compress, compress_chunked, compress_chunked_with_threads,
    compress_with_stats, compress_with_stats_arena, decompress, decompress_arena,
    decompress_chunk, decompress_chunked, decompress_chunked_with_threads, valid_min_max,
    ChunkedReader, ChunkedWriter, ClizError, CompressStats, PipelineConfig, Periodicity,
    ScratchArena, TuneResult, TuneSpec,
};

// Frozen pre-optimization reference implementations, re-exported for the
// benchmark harness and differential tests only (see their docs in
// cliz-core).
#[doc(hidden)]
pub use cliz_core::chunked::compress_chunked_alloc_baseline;
#[doc(hidden)]
pub use cliz_core::compressor::compress_alloc_baseline;

/// Resolves a value-range-relative tolerance against the *valid* (unmasked,
/// finite) range — the fair way to drive mask-blind baselines at the same
/// fidelity target as CliZ on masked datasets.
pub fn rel_bound_on_valid(
    data: &cliz_grid::Grid<f32>,
    mask: Option<&cliz_grid::MaskMap>,
    ratio: f64,
) -> cliz_quant::ErrorBound {
    let (mn, mx) = valid_min_max(data, mask);
    cliz_quant::ErrorBound::Abs(cliz_quant::ErrorBound::Rel(ratio).resolve(mn, mx))
}

pub use cliz_baselines::{BaselineError, Compressor, Qoz, Sperr, Sz2Lorenzo, SzInterp, Zfp};

/// Grid containers and shape algebra.
pub mod grid {
    pub use cliz_grid::*;
}

/// Synthetic climate dataset generators.
pub mod data {
    pub use cliz_climate_data::*;
}

/// Quality and rate metrics.
pub mod metrics {
    pub use cliz_metrics::*;
}

/// WAN transfer simulation.
pub mod transfer {
    pub use cliz_transfer::*;
}

/// Entropy coding building blocks.
pub mod entropy {
    pub use cliz_entropy::*;
}

/// The `zlite` lossless backend.
pub mod lossless {
    pub use cliz_lossless::*;
}

/// Quantization and bin classification.
pub mod quant {
    pub use cliz_quant::*;
}

/// Interpolation predictors.
pub mod predict {
    pub use cliz_predict::*;
}

/// FFT / periodicity detection.
pub mod fft {
    pub use cliz_fft::*;
}

/// The auto-tuning module (pipeline enumeration etc.).
pub mod tuning {
    pub use cliz_core::autotune::*;
}

/// Periodic template/residual machinery (exposed for analysis harnesses).
pub mod periodic {
    pub use cliz_core::periodic::*;
}

/// Rayon-parallel batch compression across independent fields.
pub mod parallel;

/// Storage layer: CAF dataset files and the CZS random-access chunk store
/// (region queries, decoded-chunk LRU cache, concurrent readers).
pub mod store {
    pub use cliz_store::*;
}

pub use cliz_core::{
    decompress_chunk_arena, decompress_chunk_blob_arena, read_header, read_header_prefix,
    ChunkIndex, ChunkedHeader,
};
pub use cliz_store::{pack_store, ChunkStoreReader};

/// Common imports for applications.
pub mod prelude {
    pub use crate::{
        autotune, autotune_fast, compress, decompress, Cliz, Compressor, PipelineConfig, Periodicity, Qoz,
        Sperr, Sz2Lorenzo, SzInterp, TuneSpec, Zfp,
    };
    pub use cliz_grid::{Grid, MaskMap, Shape};
    pub use cliz_quant::ErrorBound;
}

use cliz_grid::{Grid, MaskMap};
use cliz_quant::ErrorBound;

/// CliZ behind the uniform [`Compressor`] trait, so rate-distortion sweeps
/// can treat it like the baselines.
///
/// Holds an optional tuned [`PipelineConfig`]; without one, compression uses
/// [`PipelineConfig::default_for`] (identity permutation, cubic fitting,
/// mask-aware, no classification/periodicity) — i.e. untuned CliZ.
#[derive(Clone, Debug, Default)]
pub struct Cliz {
    pub config: Option<PipelineConfig>,
}

impl Cliz {
    /// Untuned CliZ (per-rank default pipeline).
    pub fn new() -> Self {
        Self { config: None }
    }

    /// CliZ with an offline-tuned pipeline (the paper's intended usage).
    pub fn tuned(config: PipelineConfig) -> Self {
        Self {
            config: Some(config),
        }
    }
}

impl Compressor for Cliz {
    fn name(&self) -> &'static str {
        "CliZ"
    }

    fn compress(
        &self,
        data: &Grid<f32>,
        mask: Option<&MaskMap>,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, BaselineError> {
        let config = self
            .config
            .clone()
            .unwrap_or_else(|| PipelineConfig::default_for(data.shape().ndim()));
        compress(data, mask, bound, &config).map_err(|e| BaselineError::Backend(e.to_string()))
    }

    fn decompress(
        &self,
        bytes: &[u8],
        mask: Option<&MaskMap>,
    ) -> Result<Grid<f32>, BaselineError> {
        decompress(bytes, mask).map_err(|e| BaselineError::Backend(e.to_string()))
    }
}

/// Every compressor the paper's Fig. 10 sweeps, in display order.
/// CliZ is last so tables print baselines first.
pub fn all_compressors(tuned: Option<PipelineConfig>) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(SzInterp),
        Box::new(Zfp),
        Box::new(Sperr),
        Box::new(Qoz),
        Box::new(match tuned {
            Some(c) => Cliz::tuned(c),
            None => Cliz::new(),
        }),
    ]
}

/// [`all_compressors`] plus the SZ2-style Lorenzo comparator (cited by the
/// paper as CliZ's lineage but not part of its Fig. 10 sweep).
pub fn all_compressors_extended(tuned: Option<PipelineConfig>) -> Vec<Box<dyn Compressor>> {
    let mut v = all_compressors(tuned);
    v.insert(0, Box::new(Sz2Lorenzo));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_grid::Shape;

    #[test]
    fn trait_adapter_roundtrip() {
        let g = Grid::from_fn(Shape::new(&[20, 30]), |c| {
            ((c[0] as f32 * 0.3).sin() + (c[1] as f32 * 0.2).cos()) * 5.0
        });
        let cliz = Cliz::new();
        let bytes = cliz.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
        let out = cliz.decompress(&bytes, None).unwrap();
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() <= 1e-3);
        }
    }

    #[test]
    fn all_compressors_listed() {
        let cs = all_compressors(None);
        let names: Vec<&str> = cs.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["SZ3", "ZFP", "SPERR", "QoZ1.1", "CliZ"]);
    }
}
