//! Property tests for the interpolation predictor: encode/decode symmetry
//! and the error-bound contract under arbitrary shapes, data, masks, and
//! fitting families.

use cliz_predict::{predict_quantize, reconstruct, Fitting, InterpParams};
use cliz_quant::{LinearQuantizer, ESCAPE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    dims: Vec<usize>,
    data: Vec<f32>,
    mask: Option<Vec<bool>>,
    eb: f64,
    fitting: Fitting,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    let dims = prop_oneof![
        prop::collection::vec(1usize..50, 1),
        prop::collection::vec(1usize..16, 2),
        prop::collection::vec(1usize..8, 3),
    ];
    (dims, any::<u64>(), 1e-6f64..1e-1, any::<bool>(), 0u8..3).prop_map(
        |(dims, seed, eb, cubic, mask_kind)| {
            let n: usize = dims.iter().product();
            let mut state = seed | 1;
            let mut rnd = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
            };
            let data: Vec<f32> = (0..n)
                .map(|i| (((i as f64) * 0.21).sin() * 8.0 + rnd() * 0.5) as f32)
                .collect();
            let mask = match mask_kind {
                0 => None,
                1 => Some((0..n).map(|i| i % 4 != 0).collect()),
                _ => Some((0..n).map(|i| i % 3 == 1).collect()),
            };
            Case {
                dims,
                data,
                mask,
                eb,
                fitting: if cubic { Fitting::Cubic } else { Fitting::Linear },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The full contract in one property: encoder reconstruction equals
    /// decoder output bit-for-bit, the bound holds on valid points, and
    /// masked points receive the fill value.
    #[test]
    fn roundtrip_contract(case in case_strategy()) {
        let q = LinearQuantizer::new(case.eb);
        let params = match &case.mask {
            Some(m) => InterpParams::with_mask(case.fitting, m),
            None => InterpParams::new(case.fitting),
        };
        let mut enc_buf = case.data.clone();
        let mut symbols = vec![0u32; case.data.len()];
        let escapes = predict_quantize(&mut enc_buf, &case.dims, &params, &q, &mut symbols);

        let is_valid = |i: usize| case.mask.as_ref().is_none_or(|m| m[i]);
        let literals: Vec<f32> = symbols
            .iter()
            .enumerate()
            .filter(|&(i, &s)| s == ESCAPE && is_valid(i))
            .map(|(i, _)| case.data[i])
            .collect();
        prop_assert_eq!(literals.len(), escapes);

        let mut dec_buf = vec![0.0f32; case.data.len()];
        prop_assert!(
            reconstruct(&mut dec_buf, &case.dims, &params, &q, &symbols, &literals, -5.5)
                .is_ok()
        );

        for i in 0..case.data.len() {
            if is_valid(i) {
                prop_assert!(
                    (case.data[i] as f64 - dec_buf[i] as f64).abs()
                        <= case.eb * (1.0 + 1e-12),
                    "bound violated at {} ({} vs {})", i, case.data[i], dec_buf[i]
                );
                prop_assert_eq!(enc_buf[i].to_bits(), dec_buf[i].to_bits(),
                    "enc/dec divergence at {}", i);
            } else {
                prop_assert_eq!(dec_buf[i], -5.5);
            }
        }
    }

    /// Symbols at masked positions are placeholders and escapes never occur
    /// there.
    #[test]
    fn masked_positions_inert(case in case_strategy()) {
        prop_assume!(case.mask.is_some());
        let q = LinearQuantizer::new(case.eb);
        let mask = case.mask.as_ref().unwrap();
        let params = InterpParams::with_mask(case.fitting, mask);
        let mut buf = case.data.clone();
        let mut symbols = vec![0u32; buf.len()];
        predict_quantize(&mut buf, &case.dims, &params, &q, &mut symbols);
        let zero = cliz_quant::bin_to_symbol(0);
        for (i, &s) in symbols.iter().enumerate() {
            if !mask[i] {
                prop_assert_eq!(s, zero);
                // Masked data is never rewritten by the encoder.
                prop_assert_eq!(buf[i].to_bits(), case.data[i].to_bits());
            }
        }
    }
}
