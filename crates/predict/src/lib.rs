//! Multilevel interpolation prediction for CliZ.
//!
//! This implements the SZ3 "dynamic spline interpolation" decomposition
//! (Zhao et al., ICDE'21) that CliZ builds on, extended with the paper's
//! mask-map-aware fitting (Sec. VI-B, Theorem 1):
//!
//! * data is traversed level by level with strides `s = 2^L, …, 4, 2, 1`;
//!   at each level every dimension is swept in order, predicting the points
//!   at odd multiples of `s` along that dimension from already-reconstructed
//!   neighbours at `±s` and `±3s`;
//! * **cubic fitting** uses the four neighbours with the classic
//!   `(−1/16, 9/16, 9/16, −1/16)` weights; **linear fitting** averages the
//!   two nearest;
//! * neighbours that are out of bounds **or masked invalid** are excluded by
//!   recomputing the fit coefficients with Theorem 1's `M`/`B` product
//!   formula, which degrades cubic → quadratic → linear → constant → zero
//!   exactly as the paper prescribes;
//! * each predicted point is quantized immediately (compression) or
//!   reconstructed from its bin (decompression), so later predictions always
//!   see decoder-identical values.
//!
//! The symbol stream is materialized as a *grid* in raster order (one symbol
//! per point), which makes the downstream classification and multi-Huffman
//! stages order-independent of the interpolation traversal.

pub mod fitting;
pub mod interp;
pub mod reference;

pub use fitting::{cubic_coeffs, linear_coeffs, Fitting};
pub use interp::{
    predict_quantize, predict_quantize_leveled, reconstruct, reconstruct_leveled, InterpParams,
    ReconstructError,
};
pub use reference::{ref_predict_quantize, ref_predict_quantize_leveled};
