//! Level-by-level interpolation traversal shared by compression and
//! decompression.
//!
//! Both sides walk the identical point sequence; compression quantizes
//! `value − prediction` into a symbol grid, decompression replays the symbols
//! into reconstructions. Keeping the walk in one function (generic over a
//! small visitor closure) makes encode/decode divergence structurally
//! impossible.

use crate::fitting::{cubic_coeffs, linear_coeffs, Fitting};
use cliz_quant::{LinearQuantizer, Quantized, ESCAPE};

/// Per-call parameters for the interpolation pass.
#[derive(Clone, Copy, Debug)]
pub struct InterpParams<'a> {
    pub fitting: Fitting,
    /// Validity per point (raster order); `None` = everything valid.
    pub mask: Option<&'a [bool]>,
}

impl<'a> InterpParams<'a> {
    pub fn new(fitting: Fitting) -> Self {
        Self {
            fitting,
            mask: None,
        }
    }

    pub fn with_mask(fitting: Fitting, mask: &'a [bool]) -> Self {
        Self {
            fitting,
            mask: Some(mask),
        }
    }

    #[inline]
    fn is_valid(&self, idx: usize) -> bool {
        self.mask.is_none_or(|m| m[idx])
    }
}

/// Decode-side stream mismatch: the literal stream length disagrees with
/// the escape count implied by the symbol grid. Containers are untrusted —
/// this must surface as an error, never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconstructError {
    pub expected_literals: usize,
    pub got_literals: usize,
}

impl std::fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "literal stream has {} value(s) but the symbol grid escapes {}",
            self.got_literals, self.expected_literals
        )
    }
}

impl std::error::Error for ReconstructError {}

/// Row-major strides for `dims`.
fn strides_of(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Compression pass: predicts every point, writing one quantization symbol
/// per point into `symbols` (raster order) and overwriting `buf` with the
/// decoder-identical reconstruction. Masked points are skipped (their symbol
/// is a zero-bin placeholder the encoder drops; `buf` keeps the fill value).
///
/// Returns the escape (literal) count. Escaped points keep their original
/// value in `buf`; collect literals by scanning `symbols` for [`ESCAPE`].
pub fn predict_quantize(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer: &LinearQuantizer,
    symbols: &mut [u32],
) -> usize {
    predict_quantize_leveled(buf, dims, params, &|_| *quantizer, symbols)
}

/// [`predict_quantize`] with a per-level quantizer: `quantizer_for(stride)`
/// supplies the quantizer used at interpolation stride `stride` (the anchor
/// point is stride 0). QoZ-style compressors tighten coarse levels this way;
/// any returned bound ≤ the advertised user bound keeps the global contract.
/// The decoder must be driven with the identical policy
/// ([`reconstruct_leveled`]).
// xtask-allow-fn: R5 -- walk() only visits idx < dims product == buf.len(), asserted at entry
pub fn predict_quantize_leveled(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer_for: &dyn Fn(usize) -> LinearQuantizer,
    symbols: &mut [u32],
) -> usize {
    let expected: usize = dims.iter().product();
    assert_eq!(buf.len(), expected, "buffer/shape mismatch");
    assert_eq!(symbols.len(), expected, "symbol grid/shape mismatch");
    if let Some(m) = params.mask {
        assert_eq!(m.len(), expected);
    }

    // Zero-bin placeholder for masked points so the grid is fully populated.
    let zero_sym = cliz_quant::bin_to_symbol(0);
    let mut escapes = 0usize;
    walk(dims, params, buf, |buf, idx, stride, pred| {
        if !params.is_valid(idx) {
            symbols[idx] = zero_sym;
            return;
        }
        match quantizer_for(stride).quantize(buf[idx], pred) {
            Quantized::Bin { symbol, recon } => {
                symbols[idx] = symbol;
                buf[idx] = recon;
            }
            Quantized::Escape => {
                symbols[idx] = ESCAPE;
                escapes += 1;
                // buf keeps the exact original value = the stored literal.
            }
        }
    });
    escapes
}

/// Decompression pass: replays `symbols` (raster order) into `buf`.
/// `literals` supplies escape values in raster order. Masked points receive
/// `fill_value`.
///
/// Fails (without touching a single element) when the literal stream length
/// disagrees with the escape count in `symbols` — the streams come from an
/// untrusted container.
pub fn reconstruct(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer: &LinearQuantizer,
    symbols: &[u32],
    literals: &[f32],
    fill_value: f32,
) -> Result<(), ReconstructError> {
    reconstruct_leveled(
        buf,
        dims,
        params,
        &|_| *quantizer,
        symbols,
        literals,
        fill_value,
    )
}

/// [`reconstruct`] with a per-level quantizer mirroring
/// [`predict_quantize_leveled`].
// xtask-allow-fn: R5 -- walk() only visits idx < dims product == buf.len(), asserted at entry; literal stream validated before use
pub fn reconstruct_leveled(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer_for: &dyn Fn(usize) -> LinearQuantizer,
    symbols: &[u32],
    literals: &[f32],
    fill_value: f32,
) -> Result<(), ReconstructError> {
    let expected: usize = dims.iter().product();
    assert_eq!(buf.len(), expected);
    assert_eq!(symbols.len(), expected);

    // Validate the literal stream before writing anything: the container
    // may disagree with its own symbol grid. The mask test is hoisted out
    // of the per-element loops: each arm is a straight-line scan.
    let escapes = match params.mask {
        None => symbols.iter().filter(|&&s| s == ESCAPE).count(),
        Some(m) => symbols
            .iter()
            .zip(m)
            .filter(|&(&s, &keep)| keep && s == ESCAPE)
            .count(),
    };
    if literals.len() != escapes {
        return Err(ReconstructError {
            expected_literals: escapes,
            got_literals: literals.len(),
        });
    }

    // Pre-scatter literals to their raster positions.
    let mut lit_grid: Option<Vec<f32>> = None;
    if escapes > 0 {
        let mut it = literals.iter();
        let mut grid = vec![0.0f32; expected];
        match params.mask {
            None => {
                for (g, &s) in grid.iter_mut().zip(symbols) {
                    if s == ESCAPE {
                        if let Some(&v) = it.next() {
                            *g = v;
                        }
                    }
                }
            }
            Some(m) => {
                for ((g, &s), &keep) in grid.iter_mut().zip(symbols).zip(m) {
                    if keep && s == ESCAPE {
                        if let Some(&v) = it.next() {
                            *g = v;
                        }
                    }
                }
            }
        }
        lit_grid = Some(grid);
    }

    // Masked points get the fill value; with no mask there is nothing to do.
    if let Some(m) = params.mask {
        for (v, &keep) in buf.iter_mut().zip(m) {
            if !keep {
                *v = fill_value;
            }
        }
    }

    walk(dims, params, buf, |buf, idx, stride, pred| {
        if !params.is_valid(idx) {
            return;
        }
        let s = symbols[idx];
        buf[idx] = if s == ESCAPE {
            // lit_grid is Some whenever any escape exists (validated above).
            lit_grid.as_deref().map_or(0.0, |g| g[idx])
        } else {
            quantizer_for(stride).recover(s, pred)
        };
    });
    Ok(())
}

/// The traversal skeleton. Calls `visit(buf, idx, stride, pred)` exactly
/// once per point in a deterministic order, where `pred` is the fit
/// prediction computed from already-visited (reconstructed) neighbours and
/// `stride` is the interpolation level (0 for the anchor). The visitor may
/// rewrite `buf[idx]`; predictions for later points see the rewrite.
///
/// Order: the all-zero anchor first (predicted as 0.0), then levels with
/// strides `s = 2^L … 1`; within a level, dimensions in ascending index
/// order (the caller controls effective order by physically permuting data).
fn walk<F>(dims: &[usize], params: &InterpParams, buf: &mut [f32], mut visit: F)
where
    F: FnMut(&mut [f32], usize, usize, f64),
{
    let ndim = dims.len();
    let strides = strides_of(dims);
    let max_dim = dims.iter().copied().max().unwrap_or(1);

    // Anchor point: nothing is known yet, predict zero.
    visit(buf, 0, 0, 0.0);
    if max_dim <= 1 {
        return;
    }

    // Top stride: largest power of two strictly below max_dim, so the first
    // level predicts at least one point along the longest dimension.
    let mut s = 1usize;
    while s * 2 < max_dim {
        s *= 2;
    }

    let fitting = params.fitting;
    let mask = params.mask;
    // Odometer scratch, shared across every level/dimension pass.
    let mut coords = vec![0usize; ndim];

    while s >= 1 {
        for d in 0..ndim {
            if dims[d] <= s {
                continue; // no odd multiples of s inside this dimension
            }
            // Odometer over all dims except `d`: step s for dims < d (already
            // refined this level), 2s for dims > d (still coarse).
            coords.fill(0);
            let dim_stride = strides[d];
            let dim_len = dims[d];
            'outer: loop {
                // Base linear index of the current line (coord d = 0).
                let mut base = 0usize;
                for e in 0..ndim {
                    if e != d {
                        base += coords[e] * strides[e];
                    }
                }
                // Predict points at odd multiples of s along dim d. The
                // prediction is computed eagerly (the visitor only rewrites
                // buf[idx], which the fit never references).
                let mut i = s;
                while i < dim_len {
                    let idx = base + i * dim_stride;
                    let pred =
                        predict_at(buf, mask, idx, i, dim_len, dim_stride, s, fitting);
                    visit(buf, idx, s, pred);
                    i += 2 * s;
                }
                // Advance the odometer.
                let mut e = ndim;
                loop {
                    if e == 0 {
                        break 'outer;
                    }
                    e -= 1;
                    if e == d {
                        continue;
                    }
                    let step = if e < d { s } else { 2 * s };
                    coords[e] += step;
                    if coords[e] < dims[e] {
                        break;
                    }
                    coords[e] = 0;
                }
            }
        }
        if s == 1 {
            break;
        }
        s /= 2;
    }
}

/// Computes the fit prediction for the point at linear index `idx`, which
/// sits at coordinate `i` along the active dimension (stride `dim_stride`,
/// length `dim_len`), using neighbours at `i ± s` and `i ± 3s`.
// xtask-allow-fn: R5 -- neighbour offsets are bounds-checked against dim_len before use; walk() guarantees idx/i agree
#[inline]
fn predict_at(
    buf: &[f32],
    mask: Option<&[bool]>,
    idx: usize,
    i: usize,
    dim_len: usize,
    dim_stride: usize,
    s: usize,
    fitting: Fitting,
) -> f64 {
    // Interior fast path: no mask and every reference in bounds — by far the
    // common case on climate-sized grids, and free of per-reference branches.
    if mask.is_none() {
        let step = s * dim_stride;
        match fitting {
            Fitting::Linear if i >= s && i + s < dim_len => {
                return 0.5 * (buf[idx - step] as f64 + buf[idx + step] as f64);
            }
            Fitting::Cubic if i >= 3 * s && i + 3 * s < dim_len => {
                let d0 = buf[idx - 3 * step] as f64;
                let d1 = buf[idx - step] as f64;
                let d2 = buf[idx + step] as f64;
                let d3 = buf[idx + 3 * step] as f64;
                return (9.0 / 16.0) * (d1 + d2) - (1.0 / 16.0) * (d0 + d3);
            }
            _ => {}
        }
    }

    let avail = |offset_steps: isize| -> Option<usize> {
        let pos = i as isize + offset_steps * s as isize;
        if pos < 0 || pos as usize >= dim_len {
            return None;
        }
        // idx == line base + i*dim_stride, so rebase through the line
        // origin: no signed/unsigned round-trip on the linear index.
        let j = idx - i * dim_stride + pos as usize * dim_stride;
        if mask.is_some_and(|m| !m[j]) {
            return None;
        }
        Some(j)
    };
    match fitting {
        Fitting::Linear => {
            let refs = [avail(-1), avail(1)];
            let c = linear_coeffs([refs[0].is_some(), refs[1].is_some()]);
            let mut p = 0.0f64;
            for (r, &coef) in refs.iter().zip(&c) {
                if let Some(j) = r {
                    p += coef * buf[*j] as f64;
                }
            }
            p
        }
        Fitting::Cubic => {
            let refs = [avail(-3), avail(-1), avail(1), avail(3)];
            let c = cubic_coeffs([
                refs[0].is_some(),
                refs[1].is_some(),
                refs[2].is_some(),
                refs[3].is_some(),
            ]);
            let mut p = 0.0f64;
            for (r, &coef) in refs.iter().zip(&c) {
                if let Some(j) = r {
                    p += coef * buf[*j] as f64;
                }
            }
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_quant::bin_to_symbol;

    /// Full round-trip helper: compress then decompress, assert error bound.
    fn roundtrip(
        data: &[f32],
        dims: &[usize],
        fitting: Fitting,
        mask: Option<&[bool]>,
        eb: f64,
    ) -> (Vec<f32>, usize) {
        let q = LinearQuantizer::new(eb);
        let params = match mask {
            Some(m) => InterpParams::with_mask(fitting, m),
            None => InterpParams::new(fitting),
        };
        let mut buf = data.to_vec();
        let mut symbols = vec![0u32; data.len()];
        let escapes = predict_quantize(&mut buf, dims, &params, &q, &mut symbols);

        // Literals in raster order = original values at escape positions.
        let literals: Vec<f32> = symbols
            .iter()
            .enumerate()
            .filter(|&(i, &s)| s == ESCAPE && mask.is_none_or(|m| m[i]))
            .map(|(i, _)| data[i])
            .collect();
        assert_eq!(literals.len(), escapes);

        let mut out = vec![0.0f32; data.len()];
        reconstruct(&mut out, dims, &params, &q, &symbols, &literals, -999.0).unwrap();

        for (i, (&orig, &rec)) in data.iter().zip(&out).enumerate() {
            if mask.is_none_or(|m| m[i]) {
                assert!(
                    (orig as f64 - rec as f64).abs() <= eb,
                    "bound violated at {i}: {orig} vs {rec}"
                );
                // Encoder's in-place reconstruction must equal decoder output.
                assert_eq!(buf[i], rec, "enc/dec divergence at {i}");
            } else {
                assert_eq!(rec, -999.0, "masked point not filled at {i}");
            }
        }
        (out, escapes)
    }

    fn smooth_3d(dims: &[usize]) -> Vec<f32> {
        let (a, b, c) = (dims[0], dims[1], dims[2]);
        let mut v = Vec::with_capacity(a * b * c);
        for i in 0..a {
            for j in 0..b {
                for k in 0..c {
                    let x = i as f64 / a as f64;
                    let y = j as f64 / b as f64;
                    let z = k as f64 / c as f64;
                    v.push((10.0 * (x * 3.1).sin() + 5.0 * (y * 2.0).cos() + z * z) as f32);
                }
            }
        }
        v
    }

    #[test]
    fn roundtrip_1d_linear() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32 * 0.3).sin() * 4.0).collect();
        roundtrip(&data, &[100], Fitting::Linear, None, 1e-3);
    }

    #[test]
    fn roundtrip_1d_cubic() {
        let data: Vec<f32> = (0..257).map(|i| (i as f32 * 0.1).cos() * 7.0).collect();
        roundtrip(&data, &[257], Fitting::Cubic, None, 1e-4);
    }

    #[test]
    fn roundtrip_2d_both_fittings() {
        let dims = [33, 47];
        let data: Vec<f32> = (0..33 * 47)
            .map(|i| {
                let (r, c) = (i / 47, i % 47);
                ((r as f32 * 0.2).sin() + (c as f32 * 0.15).cos()) * 3.0
            })
            .collect();
        roundtrip(&data, &dims, Fitting::Linear, None, 1e-3);
        roundtrip(&data, &dims, Fitting::Cubic, None, 1e-3);
    }

    #[test]
    fn roundtrip_3d() {
        let dims = [6, 20, 24];
        let data = smooth_3d(&dims);
        roundtrip(&data, &dims, Fitting::Cubic, None, 1e-3);
    }

    #[test]
    fn roundtrip_4d() {
        let dims = [3, 5, 8, 13];
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|i| ((i % 97) as f32 * 0.21).sin()).collect();
        roundtrip(&data, &dims, Fitting::Linear, None, 1e-3);
    }

    #[test]
    fn smooth_data_mostly_zero_bins() {
        let dims = [16, 64, 64];
        let data = smooth_3d(&dims);
        let q = LinearQuantizer::new(1e-2);
        let params = InterpParams::new(Fitting::Cubic);
        let mut buf = data.clone();
        let mut symbols = vec![0u32; data.len()];
        let escapes = predict_quantize(&mut buf, &dims, &params, &q, &mut symbols);
        // The anchor escapes (value >> eb against prediction 0); smoothness
        // keeps everything else in tiny bins.
        assert!(escapes <= 4, "{escapes} escapes");
        let zero = bin_to_symbol(0);
        let near: usize = symbols
            .iter()
            .filter(|&&s| s != ESCAPE && s <= zero + 4)
            .count();
        assert!(
            near as f64 / data.len() as f64 > 0.9,
            "only {near}/{} small bins",
            data.len()
        );
    }

    #[test]
    fn single_point_grid() {
        roundtrip(&[42.0], &[1], Fitting::Cubic, None, 1e-6);
    }

    #[test]
    fn tiny_grids() {
        for dims in [&[2usize][..], &[3], &[2, 2], &[1, 5], &[2, 1, 3]] {
            let n: usize = dims.iter().product();
            let data: Vec<f32> = (0..n).map(|i| i as f32 * 1.7 - 3.0).collect();
            roundtrip(&data, dims, Fitting::Linear, None, 1e-3);
            roundtrip(&data, dims, Fitting::Cubic, None, 1e-3);
        }
    }

    #[test]
    fn masked_roundtrip_ignores_fill_values() {
        // A smooth field with a block of huge fill values (like CESM land).
        let dims = [24, 24];
        let mut data: Vec<f32> = (0..576)
            .map(|i| {
                let (r, c) = (i / 24, i % 24);
                ((r as f32 * 0.3).sin() + (c as f32 * 0.25).cos()) * 2.0
            })
            .collect();
        let mut mask = vec![true; 576];
        for r in 8..16 {
            for c in 8..16 {
                data[r * 24 + c] = 1.0e32; // fill value
                mask[r * 24 + c] = false;
            }
        }
        let (_, escapes) = roundtrip(&data, &dims, Fitting::Cubic, Some(&mask), 1e-3);
        // Fill values must not leak into predictions: with the mask active the
        // valid region is smooth, so escapes stay at the anchor only.
        assert!(escapes <= 2, "mask leak caused {escapes} escapes");
    }

    #[test]
    fn unmasked_fill_values_wreck_prediction() {
        // Control experiment for the test above: WITHOUT the mask the huge
        // values must cause many escapes/large bins — this asymmetry is the
        // paper's motivation for mask-aware prediction.
        let dims = [24, 24];
        let mut data: Vec<f32> = (0..576)
            .map(|i| {
                let (r, c) = (i / 24, i % 24);
                ((r as f32 * 0.3).sin() + (c as f32 * 0.25).cos()) * 2.0
            })
            .collect();
        for r in 8..16 {
            for c in 8..16 {
                data[r * 24 + c] = 1.0e32;
            }
        }
        let q = LinearQuantizer::new(1e-3);
        let params = InterpParams::new(Fitting::Cubic);
        let mut buf = data.clone();
        let mut symbols = vec![0u32; data.len()];
        let escapes = predict_quantize(&mut buf, &dims, &params, &q, &mut symbols);
        assert!(escapes > 30, "expected fill-value damage, got {escapes}");
    }

    #[test]
    fn fully_masked_grid() {
        let dims = [4, 4];
        let data = vec![1.0e32f32; 16];
        let mask = vec![false; 16];
        roundtrip(&data, &dims, Fitting::Linear, Some(&mask), 1e-3);
    }

    #[test]
    fn rough_data_roundtrips_via_escapes() {
        // Pseudo-random rough data: predictions fail, escapes must save it.
        let mut state = 7u64;
        let data: Vec<f32> = (0..500)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / 1e4) * if state & 1 == 0 { 1.0 } else { -1.0 }
            })
            .collect();
        roundtrip(&data, &[500], Fitting::Cubic, None, 1e-9);
    }

    #[test]
    fn literal_mismatch_is_an_error_not_a_panic() {
        let q = LinearQuantizer::new(1e-3);
        let params = InterpParams::new(Fitting::Linear);
        let mut data: Vec<f32> = (0..64).map(|i| (i as f32 * 0.4).sin()).collect();
        data[17] = 1.0e30; // far beyond any bin: guaranteed escape
        let mut buf = data.clone();
        let mut symbols = vec![0u32; 64];
        let escapes = predict_quantize(&mut buf, &[64], &params, &q, &mut symbols);
        assert!(escapes >= 1);

        let mut out = vec![0.0f32; 64];
        // Too few literals…
        let err = reconstruct(&mut out, &[64], &params, &q, &symbols, &[], -1.0)
            .unwrap_err();
        assert_eq!(err.expected_literals, escapes);
        assert_eq!(err.got_literals, 0);
        // …and too many.
        let too_many = vec![0.0f32; escapes + 3];
        assert!(reconstruct(&mut out, &[64], &params, &q, &symbols, &too_many, -1.0).is_err());
    }

    #[test]
    fn cubic_beats_linear_on_smooth_curves() {
        let data: Vec<f32> = (0..1024)
            .map(|i| ((i as f64) * 0.01).sin() as f32 * 100.0)
            .collect();
        let q = LinearQuantizer::new(1e-4);
        let sum_mag = |fitting| {
            let params = InterpParams::new(fitting);
            let mut buf = data.clone();
            let mut symbols = vec![0u32; data.len()];
            predict_quantize(&mut buf, &[1024], &params, &q, &mut symbols);
            symbols
                .iter()
                .filter(|&&s| s != ESCAPE)
                .map(|&s| cliz_quant::symbol_to_bin(s).unsigned_abs() as u64)
                .sum::<u64>()
        };
        let lin = sum_mag(Fitting::Linear);
        let cub = sum_mag(Fitting::Cubic);
        assert!(cub < lin, "cubic bins {cub} !< linear bins {lin}");
    }
}
