//! Level-by-level interpolation traversal shared by compression and
//! decompression.
//!
//! Both sides walk the identical point sequence; compression quantizes
//! `value − prediction` into a symbol grid, decompression replays the symbols
//! into reconstructions. Keeping the walk in one function (generic over a
//! small visitor closure) makes encode/decode divergence structurally
//! impossible.

use crate::fitting::{cubic_coeffs, linear_coeffs, Fitting};
use cliz_quant::{LinearQuantizer, ESCAPE};

/// Per-call parameters for the interpolation pass.
#[derive(Clone, Copy, Debug)]
pub struct InterpParams<'a> {
    pub fitting: Fitting,
    /// Validity per point (raster order); `None` = everything valid.
    pub mask: Option<&'a [bool]>,
}

impl<'a> InterpParams<'a> {
    pub fn new(fitting: Fitting) -> Self {
        Self {
            fitting,
            mask: None,
        }
    }

    pub fn with_mask(fitting: Fitting, mask: &'a [bool]) -> Self {
        Self {
            fitting,
            mask: Some(mask),
        }
    }

}

/// Decode-side stream mismatch: the literal stream length disagrees with
/// the escape count implied by the symbol grid. Containers are untrusted —
/// this must surface as an error, never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconstructError {
    pub expected_literals: usize,
    pub got_literals: usize,
}

impl std::fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "literal stream has {} value(s) but the symbol grid escapes {}",
            self.got_literals, self.expected_literals
        )
    }
}

impl std::error::Error for ReconstructError {}

/// Row-major strides for `dims`.
fn strides_of(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Compression pass: predicts every point, writing one quantization symbol
/// per point into `symbols` (raster order) and overwriting `buf` with the
/// decoder-identical reconstruction. Masked points are skipped (their symbol
/// is a zero-bin placeholder the encoder drops; `buf` keeps the fill value).
///
/// Returns the escape (literal) count. Escaped points keep their original
/// value in `buf`; collect literals by scanning `symbols` for [`ESCAPE`].
// xtask-allow-fn: R5 -- walk() only visits idx < dims product == buf.len(), asserted at entry
pub fn predict_quantize(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer: &LinearQuantizer,
    symbols: &mut [u32],
) -> usize {
    let expected: usize = dims.iter().product();
    assert_eq!(buf.len(), expected, "buffer/shape mismatch");
    assert_eq!(symbols.len(), expected, "symbol grid/shape mismatch");
    if let Some(m) = params.mask {
        assert_eq!(m.len(), expected);
    }

    // The uniform-quantizer path is the pipeline's hot path: specialize it
    // with the quantizer captured by value so the inner loops see a truly
    // loop-invariant eb/radius (the leveled variant's stride cache is a
    // mutable capture, which forces the quantizer fields to be reloaded
    // every point).
    let q = *quantizer;
    let zero_sym = cliz_quant::bin_to_symbol(0);
    let mut escapes = 0usize;
    match params.mask {
        None => walk(dims, params, buf, |buf, idx, _, pred| {
            quantize_store(&q, buf, symbols, idx, pred, &mut escapes)
        }),
        Some(m) => walk(dims, params, buf, |buf, idx, _, pred| {
            if !m[idx] {
                symbols[idx] = zero_sym;
                return buf[idx];
            }
            quantize_store(&q, buf, symbols, idx, pred, &mut escapes)
        }),
    }
    escapes
}

/// [`predict_quantize`] with a per-level quantizer: `quantizer_for(stride)`
/// supplies the quantizer used at interpolation stride `stride` (the anchor
/// point is stride 0). QoZ-style compressors tighten coarse levels this way;
/// any returned bound ≤ the advertised user bound keeps the global contract.
/// The decoder must be driven with the identical policy
/// ([`reconstruct_leveled`]).
///
/// `quantizer_for` must be a pure function of `stride`: both passes cache
/// its result per stride (one dyn call per interpolation level instead of
/// one per point), so the exact number of invocations is unspecified.
// xtask-allow-fn: R5 -- walk() only visits idx < dims product == buf.len(), asserted at entry
pub fn predict_quantize_leveled(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer_for: &dyn Fn(usize) -> LinearQuantizer,
    symbols: &mut [u32],
) -> usize {
    let expected: usize = dims.iter().product();
    assert_eq!(buf.len(), expected, "buffer/shape mismatch");
    assert_eq!(symbols.len(), expected, "symbol grid/shape mismatch");
    if let Some(m) = params.mask {
        assert_eq!(m.len(), expected);
    }

    // Zero-bin placeholder for masked points so the grid is fully populated.
    let zero_sym = cliz_quant::bin_to_symbol(0);
    let mut escapes = 0usize;
    // Stride-cached quantizer (the dyn dispatch leaves the per-point loop)
    // and a mask-specialized visitor: the unmasked variant's body is just
    // quantize-and-store. Masked points return their current value — the
    // commit stores back the bits the buffer already holds.
    let mut cur = (0usize, quantizer_for(0));
    match params.mask {
        None => walk(dims, params, buf, |buf, idx, stride, pred| {
            if stride != cur.0 {
                cur = (stride, quantizer_for(stride));
            }
            quantize_store(&cur.1, buf, symbols, idx, pred, &mut escapes)
        }),
        Some(m) => walk(dims, params, buf, |buf, idx, stride, pred| {
            if !m[idx] {
                symbols[idx] = zero_sym;
                return buf[idx];
            }
            if stride != cur.0 {
                cur = (stride, quantizer_for(stride));
            }
            quantize_store(&cur.1, buf, symbols, idx, pred, &mut escapes)
        }),
    }
    escapes
}

/// The encode visitor's point body: quantize `buf[idx]` against `pred`,
/// store the symbol, and return the value the walk commits to `buf[idx]` —
/// the decoder-identical reconstruction, or on escape the exact original
/// value (committing it back stores the bits the buffer already holds, so
/// the stored literal is untouched).
// xtask-allow-fn: R5 -- idx comes from walk(), which only visits idx < dims product == buf.len() (asserted by every caller)
#[inline]
fn quantize_store(
    q: &LinearQuantizer,
    buf: &[f32],
    symbols: &mut [u32],
    idx: usize,
    pred: f64,
    escapes: &mut usize,
) -> f32 {
    // Branch-free select form: with the two-phase walk there is no in-loop
    // buffer store for the select's longer data chain to stall, so the cmov
    // shape wins outright (the escape path hands back the original value,
    // which the commit stores unchanged).
    let (symbol, recon, ok) = q.quantize_select(buf[idx], pred);
    symbols[idx] = symbol;
    *escapes += usize::from(!ok);
    recon
}

/// Decompression pass: replays `symbols` (raster order) into `buf`.
/// `literals` supplies escape values in raster order. Masked points receive
/// `fill_value`.
///
/// Fails (without touching a single element) when the literal stream length
/// disagrees with the escape count in `symbols` — the streams come from an
/// untrusted container.
pub fn reconstruct(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer: &LinearQuantizer,
    symbols: &[u32],
    literals: &[f32],
    fill_value: f32,
) -> Result<(), ReconstructError> {
    reconstruct_leveled(
        buf,
        dims,
        params,
        &|_| *quantizer,
        symbols,
        literals,
        fill_value,
    )
}

/// [`reconstruct`] with a per-level quantizer mirroring
/// [`predict_quantize_leveled`].
// xtask-allow-fn: R5 -- walk() only visits idx < dims product == buf.len(), asserted at entry; literal stream validated before use
pub fn reconstruct_leveled(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer_for: &dyn Fn(usize) -> LinearQuantizer,
    symbols: &[u32],
    literals: &[f32],
    fill_value: f32,
) -> Result<(), ReconstructError> {
    let expected: usize = dims.iter().product();
    assert_eq!(buf.len(), expected);
    assert_eq!(symbols.len(), expected);

    // Validate the literal stream before writing anything: the container
    // may disagree with its own symbol grid. The mask test is hoisted out
    // of the per-element loops: each arm is a straight-line scan.
    let escapes = match params.mask {
        None => symbols.iter().filter(|&&s| s == ESCAPE).count(),
        Some(m) => symbols
            .iter()
            .zip(m)
            .filter(|&(&s, &keep)| keep && s == ESCAPE)
            .count(),
    };
    if literals.len() != escapes {
        return Err(ReconstructError {
            expected_literals: escapes,
            got_literals: literals.len(),
        });
    }

    // Pre-scatter literals to their raster positions.
    let mut lit_grid: Option<Vec<f32>> = None;
    if escapes > 0 {
        let mut it = literals.iter();
        let mut grid = vec![0.0f32; expected];
        match params.mask {
            None => {
                for (g, &s) in grid.iter_mut().zip(symbols) {
                    if s == ESCAPE {
                        if let Some(&v) = it.next() {
                            *g = v;
                        }
                    }
                }
            }
            Some(m) => {
                for ((g, &s), &keep) in grid.iter_mut().zip(symbols).zip(m) {
                    if keep && s == ESCAPE {
                        if let Some(&v) = it.next() {
                            *g = v;
                        }
                    }
                }
            }
        }
        lit_grid = Some(grid);
    }

    // Masked points get the fill value; with no mask there is nothing to do.
    if let Some(m) = params.mask {
        for (v, &keep) in buf.iter_mut().zip(m) {
            if !keep {
                *v = fill_value;
            }
        }
    }

    // Stride-cached quantizer and mask-specialized visitor, mirroring the
    // encode pass. Masked points return their current value (the fill,
    // placed above) — the commit stores the same bits back.
    let mut cur = (0usize, quantizer_for(0));
    let lit = lit_grid.as_deref();
    match params.mask {
        None => walk(dims, params, buf, |_, idx, stride, pred| {
            if stride != cur.0 {
                cur = (stride, quantizer_for(stride));
            }
            let s = symbols[idx];
            if s == ESCAPE {
                // lit is Some whenever any escape exists (validated above).
                lit.map_or(0.0, |g| g[idx])
            } else {
                cur.1.recover(s, pred)
            }
        }),
        Some(m) => walk(dims, params, buf, |buf, idx, stride, pred| {
            if !m[idx] {
                return buf[idx];
            }
            if stride != cur.0 {
                cur = (stride, quantizer_for(stride));
            }
            let s = symbols[idx];
            if s == ESCAPE {
                lit.map_or(0.0, |g| g[idx])
            } else {
                cur.1.recover(s, pred)
            }
        }),
    }
    Ok(())
}

/// The traversal skeleton. Calls `visit(buf, idx, stride, pred)` exactly
/// once per point in a deterministic order, where `pred` is the fit
/// prediction computed from already-visited (reconstructed) neighbours and
/// `stride` is the interpolation level (0 for the anchor). The visitor
/// reads `buf` (and its own captures) and returns the new value for
/// `buf[idx]`; the walk commits that value, and predictions in later passes
/// see it.
///
/// Order: the all-zero anchor first (predicted as 0.0), then levels with
/// strides `s = 2^L … 1`; within a level, dimensions in ascending index
/// order (the caller controls effective order by physically permuting data).
/// Within one (level, dimension) pass the visit order is a deterministic
/// cache-aware choice — and is immaterial to the results, because a pass
/// never reads what it writes: targets sit at odd multiples of `s` along
/// the active dimension while every fit reference sits at an even multiple,
/// so all of a pass's predictions depend only on pre-pass state.
///
/// That same independence is why the visitor returns the new value instead
/// of writing it: the sweeps below run each pass in two phases, computing
/// every prediction from an immutably borrowed `buf` into a small scratch
/// list and committing the batch afterwards. With the borrow split this
/// way the compiler knows the stencil loads cannot alias the stores, and
/// the CPU never has to disambiguate a neighbour load against the previous
/// point's in-flight store — which costs over half the pass time when the
/// stores land interleaved between the loads' addresses (measured ~22 vs
/// ~8 ns/pt on the finest cubic pass).
///
/// The per-pass work is delegated to [`sweep_line`] (contiguous trailing
/// dimension) or [`sweep_plane`] (strided dimensions, loop-interchanged so
/// accesses stream along the trailing dims), both of which hoist the mask
/// and fitting dispatch and the interior-stencil bounds checks out of the
/// per-point loop. Compression and decompression still share this one
/// function, so the hoisted kernels cannot introduce an encode/decode
/// traversal divergence.
// xtask-allow-fn: R5 -- callers assert dims product == buf.len(); every index the walk forms stays inside that product
fn walk<F>(dims: &[usize], params: &InterpParams, buf: &mut [f32], mut visit: F)
where
    F: FnMut(&[f32], usize, usize, f64) -> f32,
{
    let ndim = dims.len();
    let strides = strides_of(dims);
    let max_dim = dims.iter().copied().max().unwrap_or(1);

    // Anchor point: nothing is known yet, predict zero.
    buf[0] = visit(buf, 0, 0, 0.0);
    if max_dim <= 1 {
        return;
    }

    // Top stride: largest power of two strictly below max_dim, so the first
    // level predicts at least one point along the longest dimension.
    let mut s = 1usize;
    while s * 2 < max_dim {
        s *= 2;
    }

    let fitting = params.fitting;
    let mask = params.mask;
    // Odometer scratch, the per-pass line-origin list, and the two-phase
    // commit buffer, all shared across every level/dimension pass.
    let mut coords = vec![0usize; ndim];
    let mut bases: Vec<usize> = Vec::new();
    let mut scratch: Vec<f32> = Vec::new();

    while s >= 1 {
        for d in 0..ndim {
            if dims[d] <= s {
                continue; // no odd multiples of s inside this dimension
            }
            // Odometer over all dims except `d`: step s for dims < d (already
            // refined this level), 2s for dims > d (still coarse). Collect
            // every line origin (coord d = 0) up front — the trailing
            // dimension advances fastest, so consecutive bases are 2s
            // elements apart in memory.
            coords.fill(0);
            let dim_stride = strides[d];
            let dim_len = dims[d];
            bases.clear();
            'outer: loop {
                let mut base = 0usize;
                for e in 0..ndim {
                    if e != d {
                        base += coords[e] * strides[e];
                    }
                }
                bases.push(base);
                // Advance the odometer.
                let mut e = ndim;
                loop {
                    if e == 0 {
                        break 'outer;
                    }
                    e -= 1;
                    if e == d {
                        continue;
                    }
                    let step = if e < d { s } else { 2 * s };
                    coords[e] += step;
                    if coords[e] < dims[e] {
                        break;
                    }
                    coords[e] = 0;
                }
            }
            if d + 1 == ndim {
                // Trailing dimension: each line is contiguous — sweep them
                // one at a time.
                for &base in &bases {
                    sweep_line(
                        buf,
                        mask,
                        fitting,
                        base,
                        dim_len,
                        dim_stride,
                        s,
                        &mut scratch,
                        &mut visit,
                    );
                }
            } else {
                // Strided dimension: sweeping a line would jump `2s·stride`
                // elements per point. Interchange instead — fix the target
                // coordinate and advance across lines, so every access
                // stream steps along the contiguous trailing dims.
                sweep_plane(
                    buf,
                    mask,
                    fitting,
                    &bases,
                    dim_len,
                    dim_stride,
                    s,
                    &mut scratch,
                    &mut visit,
                );
            }
        }
        if s == 1 {
            break;
        }
        s /= 2;
    }
}

/// One line pass at level `s`: predicts the points at odd multiples of `s`
/// (coordinates `s, 3s, 5s, …` along the active dimension) on the line whose
/// coordinate-0 element sits at linear index `base`, visiting each in order.
/// Predictions are computed eagerly — the visitor only rewrites `buf[idx]`,
/// which is never one of its own fit references (fit neighbours sit at even
/// multiples of `s`, untouched by this pass).
///
/// This is the branch-hoisted core of the traversal: the mask presence and
/// fitting family are dispatched once per line instead of once per point,
/// and on unmasked lines the interior points — every point whose fit stencil
/// is fully inside the line, which is all but the outermost one to three —
/// run a tight loop whose body is just the fit expression. The boundary
/// points and every masked line go through the general [`predict_at`], so
/// each prediction is bit-identical to the single-loop form (the interior
/// bodies are `predict_at`'s fast-path expressions, evaluated in the same
/// operation order).
///
/// Each line runs in two phases (see [`walk`]): predictions are computed
/// from the immutably borrowed buffer into `scratch`, then the batch is
/// committed — so the stencil loads provably cannot alias the stores.
// xtask-allow-fn: R5 -- interior loop bounds keep every neighbour offset inside the line (i ≥ s resp. i ≥ 3s, i + s resp. i + 3s < dim_len); boundary points use the bounds-checked predict_at
#[allow(clippy::too_many_arguments)]
#[inline]
fn sweep_line<F>(
    buf: &mut [f32],
    mask: Option<&[bool]>,
    fitting: Fitting,
    base: usize,
    dim_len: usize,
    dim_stride: usize,
    s: usize,
    scratch: &mut Vec<f32>,
    visit: &mut F,
) where
    F: FnMut(&[f32], usize, usize, f64) -> f32,
{
    let step = s * dim_stride;
    // Sized indexed scratch, not `push`: the capacity branch and length
    // update inside `push` cost ~3 ns/pt in the interior loops (measured),
    // while indexed stores into a pre-sized buffer optimize cleanly. The
    // target count is the number of odd multiples of `s` below `dim_len`.
    let targets = (dim_len - s).div_ceil(2 * s);
    if scratch.len() < targets {
        scratch.resize(targets, 0.0);
    }
    let scr = &mut scratch[..targets];
    let mut k = 0usize;
    match (mask, fitting) {
        (None, Fitting::Linear) => {
            // i starts at s, so the −s neighbour always exists; only the
            // last point can lack the +s one.
            let mut i = s;
            while i + s < dim_len {
                let idx = base + i * dim_stride;
                let pred = 0.5 * (buf[idx - step] as f64 + buf[idx + step] as f64);
                scr[k] = visit(buf, idx, s, pred);
                k += 1;
                i += 2 * s;
            }
            if i < dim_len {
                let idx = base + i * dim_stride;
                let pred = predict_at(buf, None, idx, i, dim_len, dim_stride, s, fitting);
                scr[k] = visit(buf, idx, s, pred);
                k += 1;
            }
        }
        (None, Fitting::Cubic) => {
            // The first point (i = s < 3s) lacks the −3s neighbour; after it
            // i is always ≥ 3s, so the interior loop only has to watch the
            // +3s end of the stencil.
            let mut i = s;
            if i < dim_len {
                let idx = base + i * dim_stride;
                let pred = predict_at(buf, None, idx, i, dim_len, dim_stride, s, fitting);
                scr[k] = visit(buf, idx, s, pred);
                k += 1;
                i += 2 * s;
            }
            while i + 3 * s < dim_len {
                let idx = base + i * dim_stride;
                let d0 = buf[idx - 3 * step] as f64;
                let d1 = buf[idx - step] as f64;
                let d2 = buf[idx + step] as f64;
                let d3 = buf[idx + 3 * step] as f64;
                let pred = (9.0 / 16.0) * (d1 + d2) - (1.0 / 16.0) * (d0 + d3);
                scr[k] = visit(buf, idx, s, pred);
                k += 1;
                i += 2 * s;
            }
            while i < dim_len {
                let idx = base + i * dim_stride;
                let pred = predict_at(buf, None, idx, i, dim_len, dim_stride, s, fitting);
                scr[k] = visit(buf, idx, s, pred);
                k += 1;
                i += 2 * s;
            }
        }
        (Some(_), _) => {
            // Masked lines keep the general per-point path: validity can
            // flip the stencil shape at any point.
            let mut i = s;
            while i < dim_len {
                let idx = base + i * dim_stride;
                let pred = predict_at(buf, mask, idx, i, dim_len, dim_stride, s, fitting);
                scr[k] = visit(buf, idx, s, pred);
                k += 1;
                i += 2 * s;
            }
        }
    }
    debug_assert_eq!(k, targets);
    // Commit phase: replay the same target sequence, storing the batch.
    let mut i = s;
    for &v in scr.iter() {
        buf[base + i * dim_stride] = v;
        i += 2 * s;
    }
}

/// [`sweep_line`]'s loop-interchanged sibling for strided dimensions: for
/// each target coordinate `i` (odd multiples of `s` along the active
/// dimension, in ascending order) it visits the point on every line in
/// `bases` order. Consecutive bases are adjacent along the contiguous
/// trailing dimensions, so each of the stencil's load streams and both
/// store streams advance sequentially through memory instead of jumping
/// `2s · dim_stride` elements per point.
///
/// Valid for the same reason any intra-pass order is (see [`walk`]): the
/// pass's fit references all sit at even multiples of `s`, untouched by the
/// pass's own writes. The interior/boundary split is per-`i` — one
/// classification per plane, with boundary planes and masked grids going
/// through the general [`predict_at`].
///
/// Each `i`-plane runs in two phases (see [`walk`]): predictions for every
/// line are computed from the immutably borrowed buffer into `scratch`,
/// then committed in one sequential sweep across the bases.
// xtask-allow-fn: R5 -- interior planes satisfy i ≥ s resp. 3s and i + s resp. 3s < dim_len, keeping every stencil offset in the grid; boundary planes use the bounds-checked predict_at
#[allow(clippy::too_many_arguments)]
fn sweep_plane<F>(
    buf: &mut [f32],
    mask: Option<&[bool]>,
    fitting: Fitting,
    bases: &[usize],
    dim_len: usize,
    dim_stride: usize,
    s: usize,
    scratch: &mut Vec<f32>,
    visit: &mut F,
) where
    F: FnMut(&[f32], usize, usize, f64) -> f32,
{
    let step = s * dim_stride;
    // Sized indexed scratch for the same reason as in [`sweep_line`]: the
    // per-element `push` bookkeeping is measurable at this loop's intensity.
    let targets = bases.len();
    if scratch.len() < targets {
        scratch.resize(targets, 0.0);
    }
    let scr = &mut scratch[..targets];
    let mut i = s;
    while i < dim_len {
        let off = i * dim_stride;
        let interior = mask.is_none()
            && match fitting {
                // i ≥ s always holds (i starts at s).
                Fitting::Linear => i + s < dim_len,
                Fitting::Cubic => i >= 3 * s && i + 3 * s < dim_len,
            };
        if interior {
            match fitting {
                Fitting::Linear => {
                    for (&base, slot) in bases.iter().zip(scr.iter_mut()) {
                        let idx = base + off;
                        let pred = 0.5 * (buf[idx - step] as f64 + buf[idx + step] as f64);
                        *slot = visit(buf, idx, s, pred);
                    }
                }
                Fitting::Cubic => {
                    for (&base, slot) in bases.iter().zip(scr.iter_mut()) {
                        let idx = base + off;
                        let d0 = buf[idx - 3 * step] as f64;
                        let d1 = buf[idx - step] as f64;
                        let d2 = buf[idx + step] as f64;
                        let d3 = buf[idx + 3 * step] as f64;
                        let pred = (9.0 / 16.0) * (d1 + d2) - (1.0 / 16.0) * (d0 + d3);
                        *slot = visit(buf, idx, s, pred);
                    }
                }
            }
        } else {
            for (&base, slot) in bases.iter().zip(scr.iter_mut()) {
                let idx = base + off;
                let pred = predict_at(buf, mask, idx, i, dim_len, dim_stride, s, fitting);
                *slot = visit(buf, idx, s, pred);
            }
        }
        // Commit phase: one sequential store sweep across the plane.
        for (&base, &v) in bases.iter().zip(scr.iter()) {
            buf[base + off] = v;
        }
        i += 2 * s;
    }
}

/// Computes the fit prediction for the point at linear index `idx`, which
/// sits at coordinate `i` along the active dimension (stride `dim_stride`,
/// length `dim_len`), using neighbours at `i ± s` and `i ± 3s`.
// xtask-allow-fn: R5 -- neighbour offsets are bounds-checked against dim_len before use; walk() guarantees idx/i agree
#[inline]
fn predict_at(
    buf: &[f32],
    mask: Option<&[bool]>,
    idx: usize,
    i: usize,
    dim_len: usize,
    dim_stride: usize,
    s: usize,
    fitting: Fitting,
) -> f64 {
    // Interior fast path: no mask and every reference in bounds — by far the
    // common case on climate-sized grids, and free of per-reference branches.
    if mask.is_none() {
        let step = s * dim_stride;
        match fitting {
            Fitting::Linear if i >= s && i + s < dim_len => {
                return 0.5 * (buf[idx - step] as f64 + buf[idx + step] as f64);
            }
            Fitting::Cubic if i >= 3 * s && i + 3 * s < dim_len => {
                let d0 = buf[idx - 3 * step] as f64;
                let d1 = buf[idx - step] as f64;
                let d2 = buf[idx + step] as f64;
                let d3 = buf[idx + 3 * step] as f64;
                return (9.0 / 16.0) * (d1 + d2) - (1.0 / 16.0) * (d0 + d3);
            }
            _ => {}
        }
    }

    let avail = |offset_steps: isize| -> Option<usize> {
        let pos = i as isize + offset_steps * s as isize;
        if pos < 0 || pos as usize >= dim_len {
            return None;
        }
        // idx == line base + i*dim_stride, so rebase through the line
        // origin: no signed/unsigned round-trip on the linear index.
        let j = idx - i * dim_stride + pos as usize * dim_stride;
        if mask.is_some_and(|m| !m[j]) {
            return None;
        }
        Some(j)
    };
    match fitting {
        Fitting::Linear => {
            let refs = [avail(-1), avail(1)];
            let c = linear_coeffs([refs[0].is_some(), refs[1].is_some()]);
            let mut p = 0.0f64;
            for (r, &coef) in refs.iter().zip(&c) {
                if let Some(j) = r {
                    p += coef * buf[*j] as f64;
                }
            }
            p
        }
        Fitting::Cubic => {
            let refs = [avail(-3), avail(-1), avail(1), avail(3)];
            let c = cubic_coeffs([
                refs[0].is_some(),
                refs[1].is_some(),
                refs[2].is_some(),
                refs[3].is_some(),
            ]);
            let mut p = 0.0f64;
            for (r, &coef) in refs.iter().zip(&c) {
                if let Some(j) = r {
                    p += coef * buf[*j] as f64;
                }
            }
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliz_quant::bin_to_symbol;

    /// Full round-trip helper: compress then decompress, assert error bound.
    fn roundtrip(
        data: &[f32],
        dims: &[usize],
        fitting: Fitting,
        mask: Option<&[bool]>,
        eb: f64,
    ) -> (Vec<f32>, usize) {
        let q = LinearQuantizer::new(eb);
        let params = match mask {
            Some(m) => InterpParams::with_mask(fitting, m),
            None => InterpParams::new(fitting),
        };
        let mut buf = data.to_vec();
        let mut symbols = vec![0u32; data.len()];
        let escapes = predict_quantize(&mut buf, dims, &params, &q, &mut symbols);

        // Literals in raster order = original values at escape positions.
        let literals: Vec<f32> = symbols
            .iter()
            .enumerate()
            .filter(|&(i, &s)| s == ESCAPE && mask.is_none_or(|m| m[i]))
            .map(|(i, _)| data[i])
            .collect();
        assert_eq!(literals.len(), escapes);

        let mut out = vec![0.0f32; data.len()];
        reconstruct(&mut out, dims, &params, &q, &symbols, &literals, -999.0).unwrap();

        for (i, (&orig, &rec)) in data.iter().zip(&out).enumerate() {
            if mask.is_none_or(|m| m[i]) {
                assert!(
                    (orig as f64 - rec as f64).abs() <= eb,
                    "bound violated at {i}: {orig} vs {rec}"
                );
                // Encoder's in-place reconstruction must equal decoder output.
                assert_eq!(buf[i], rec, "enc/dec divergence at {i}");
            } else {
                assert_eq!(rec, -999.0, "masked point not filled at {i}");
            }
        }
        (out, escapes)
    }

    fn smooth_3d(dims: &[usize]) -> Vec<f32> {
        let (a, b, c) = (dims[0], dims[1], dims[2]);
        let mut v = Vec::with_capacity(a * b * c);
        for i in 0..a {
            for j in 0..b {
                for k in 0..c {
                    let x = i as f64 / a as f64;
                    let y = j as f64 / b as f64;
                    let z = k as f64 / c as f64;
                    v.push((10.0 * (x * 3.1).sin() + 5.0 * (y * 2.0).cos() + z * z) as f32);
                }
            }
        }
        v
    }

    #[test]
    fn roundtrip_1d_linear() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32 * 0.3).sin() * 4.0).collect();
        roundtrip(&data, &[100], Fitting::Linear, None, 1e-3);
    }

    #[test]
    fn roundtrip_1d_cubic() {
        let data: Vec<f32> = (0..257).map(|i| (i as f32 * 0.1).cos() * 7.0).collect();
        roundtrip(&data, &[257], Fitting::Cubic, None, 1e-4);
    }

    #[test]
    fn roundtrip_2d_both_fittings() {
        let dims = [33, 47];
        let data: Vec<f32> = (0..33 * 47)
            .map(|i| {
                let (r, c) = (i / 47, i % 47);
                ((r as f32 * 0.2).sin() + (c as f32 * 0.15).cos()) * 3.0
            })
            .collect();
        roundtrip(&data, &dims, Fitting::Linear, None, 1e-3);
        roundtrip(&data, &dims, Fitting::Cubic, None, 1e-3);
    }

    #[test]
    fn roundtrip_3d() {
        let dims = [6, 20, 24];
        let data = smooth_3d(&dims);
        roundtrip(&data, &dims, Fitting::Cubic, None, 1e-3);
    }

    #[test]
    fn roundtrip_4d() {
        let dims = [3, 5, 8, 13];
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|i| ((i % 97) as f32 * 0.21).sin()).collect();
        roundtrip(&data, &dims, Fitting::Linear, None, 1e-3);
    }

    #[test]
    fn smooth_data_mostly_zero_bins() {
        let dims = [16, 64, 64];
        let data = smooth_3d(&dims);
        let q = LinearQuantizer::new(1e-2);
        let params = InterpParams::new(Fitting::Cubic);
        let mut buf = data.clone();
        let mut symbols = vec![0u32; data.len()];
        let escapes = predict_quantize(&mut buf, &dims, &params, &q, &mut symbols);
        // The anchor escapes (value >> eb against prediction 0); smoothness
        // keeps everything else in tiny bins.
        assert!(escapes <= 4, "{escapes} escapes");
        let zero = bin_to_symbol(0);
        let near: usize = symbols
            .iter()
            .filter(|&&s| s != ESCAPE && s <= zero + 4)
            .count();
        assert!(
            near as f64 / data.len() as f64 > 0.9,
            "only {near}/{} small bins",
            data.len()
        );
    }

    #[test]
    fn single_point_grid() {
        roundtrip(&[42.0], &[1], Fitting::Cubic, None, 1e-6);
    }

    #[test]
    fn tiny_grids() {
        for dims in [&[2usize][..], &[3], &[2, 2], &[1, 5], &[2, 1, 3]] {
            let n: usize = dims.iter().product();
            let data: Vec<f32> = (0..n).map(|i| i as f32 * 1.7 - 3.0).collect();
            roundtrip(&data, dims, Fitting::Linear, None, 1e-3);
            roundtrip(&data, dims, Fitting::Cubic, None, 1e-3);
        }
    }

    #[test]
    fn masked_roundtrip_ignores_fill_values() {
        // A smooth field with a block of huge fill values (like CESM land).
        let dims = [24, 24];
        let mut data: Vec<f32> = (0..576)
            .map(|i| {
                let (r, c) = (i / 24, i % 24);
                ((r as f32 * 0.3).sin() + (c as f32 * 0.25).cos()) * 2.0
            })
            .collect();
        let mut mask = vec![true; 576];
        for r in 8..16 {
            for c in 8..16 {
                data[r * 24 + c] = 1.0e32; // fill value
                mask[r * 24 + c] = false;
            }
        }
        let (_, escapes) = roundtrip(&data, &dims, Fitting::Cubic, Some(&mask), 1e-3);
        // Fill values must not leak into predictions: with the mask active the
        // valid region is smooth, so escapes stay at the anchor only.
        assert!(escapes <= 2, "mask leak caused {escapes} escapes");
    }

    #[test]
    fn unmasked_fill_values_wreck_prediction() {
        // Control experiment for the test above: WITHOUT the mask the huge
        // values must cause many escapes/large bins — this asymmetry is the
        // paper's motivation for mask-aware prediction.
        let dims = [24, 24];
        let mut data: Vec<f32> = (0..576)
            .map(|i| {
                let (r, c) = (i / 24, i % 24);
                ((r as f32 * 0.3).sin() + (c as f32 * 0.25).cos()) * 2.0
            })
            .collect();
        for r in 8..16 {
            for c in 8..16 {
                data[r * 24 + c] = 1.0e32;
            }
        }
        let q = LinearQuantizer::new(1e-3);
        let params = InterpParams::new(Fitting::Cubic);
        let mut buf = data.clone();
        let mut symbols = vec![0u32; data.len()];
        let escapes = predict_quantize(&mut buf, &dims, &params, &q, &mut symbols);
        assert!(escapes > 30, "expected fill-value damage, got {escapes}");
    }

    #[test]
    fn fully_masked_grid() {
        let dims = [4, 4];
        let data = vec![1.0e32f32; 16];
        let mask = vec![false; 16];
        roundtrip(&data, &dims, Fitting::Linear, Some(&mask), 1e-3);
    }

    #[test]
    fn rough_data_roundtrips_via_escapes() {
        // Pseudo-random rough data: predictions fail, escapes must save it.
        let mut state = 7u64;
        let data: Vec<f32> = (0..500)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / 1e4) * if state & 1 == 0 { 1.0 } else { -1.0 }
            })
            .collect();
        roundtrip(&data, &[500], Fitting::Cubic, None, 1e-9);
    }

    #[test]
    fn literal_mismatch_is_an_error_not_a_panic() {
        let q = LinearQuantizer::new(1e-3);
        let params = InterpParams::new(Fitting::Linear);
        let mut data: Vec<f32> = (0..64).map(|i| (i as f32 * 0.4).sin()).collect();
        data[17] = 1.0e30; // far beyond any bin: guaranteed escape
        let mut buf = data.clone();
        let mut symbols = vec![0u32; 64];
        let escapes = predict_quantize(&mut buf, &[64], &params, &q, &mut symbols);
        assert!(escapes >= 1);

        let mut out = vec![0.0f32; 64];
        // Too few literals…
        let err = reconstruct(&mut out, &[64], &params, &q, &symbols, &[], -1.0)
            .unwrap_err();
        assert_eq!(err.expected_literals, escapes);
        assert_eq!(err.got_literals, 0);
        // …and too many.
        let too_many = vec![0.0f32; escapes + 3];
        assert!(reconstruct(&mut out, &[64], &params, &q, &symbols, &too_many, -1.0).is_err());
    }

    /// The hoisted kernel must be bit-identical to the frozen pre-rewrite
    /// reference: same escape count, same symbol grid, same in-place
    /// reconstruction (compared as raw f32 bits, so even sign-of-zero or
    /// NaN-payload drift would fail).
    #[test]
    fn matches_frozen_reference_bit_for_bit() {
        use crate::reference::{ref_predict_quantize, ref_predict_quantize_leveled};

        let mut cases: Vec<(Vec<usize>, Vec<f32>, Option<Vec<bool>>)> = Vec::new();
        // Smooth 3-D field (the bench shape, scaled down).
        cases.push((vec![6, 20, 24], smooth_3d(&[6, 20, 24]), None));
        // Rough data: escape-heavy.
        let mut state = 7u64;
        let rough: Vec<f32> = (0..500)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / 1e4) * if state & 1 == 0 { 1.0 } else { -1.0 }
            })
            .collect();
        cases.push((vec![500], rough, None));
        // Masked 2-D field with a fill-value block.
        let mut data: Vec<f32> = (0..33 * 47)
            .map(|i| {
                let (r, c) = (i / 47, i % 47);
                ((r as f32 * 0.2).sin() + (c as f32 * 0.15).cos()) * 3.0
            })
            .collect();
        let mut mask = vec![true; 33 * 47];
        for r in 10..20 {
            for c in 15..30 {
                data[r * 47 + c] = 1.0e32;
                mask[r * 47 + c] = false;
            }
        }
        cases.push((vec![33, 47], data, Some(mask)));
        // Tiny and degenerate shapes exercise every boundary arm.
        for dims in [&[1usize][..], &[2], &[3], &[7], &[2, 2], &[1, 5], &[2, 1, 3], &[257]] {
            let n: usize = dims.iter().product();
            let d: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 5.0).collect();
            cases.push((dims.to_vec(), d, None));
        }

        for (dims, data, mask) in &cases {
            for fitting in [Fitting::Linear, Fitting::Cubic] {
                for eb in [1e-3f64, 1e-6] {
                    let params = match mask {
                        Some(m) => InterpParams::with_mask(fitting, m),
                        None => InterpParams::new(fitting),
                    };
                    let q = LinearQuantizer::new(eb);
                    let n = data.len();

                    let mut buf_new = data.clone();
                    let mut sym_new = vec![0u32; n];
                    let esc_new = predict_quantize(&mut buf_new, dims, &params, &q, &mut sym_new);

                    let mut buf_ref = data.clone();
                    let mut sym_ref = vec![0u32; n];
                    let esc_ref =
                        ref_predict_quantize(&mut buf_ref, dims, &params, &q, &mut sym_ref);

                    let tag = format!("dims {dims:?} {fitting:?} eb {eb}");
                    assert_eq!(esc_new, esc_ref, "escapes diverged: {tag}");
                    assert_eq!(sym_new, sym_ref, "symbol grid diverged: {tag}");
                    for (i, (a, b)) in buf_new.iter().zip(&buf_ref).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "reconstruction bits diverged at {i}: {tag}"
                        );
                    }

                    // Leveled variant with a stride-dependent (pure) policy.
                    let qf = |stride: usize| LinearQuantizer::new(eb * (stride + 1) as f64);
                    let mut buf_new = data.clone();
                    let mut sym_new = vec![0u32; n];
                    let esc_new = predict_quantize_leveled(
                        &mut buf_new, dims, &params, &qf, &mut sym_new,
                    );
                    let mut buf_ref = data.clone();
                    let mut sym_ref = vec![0u32; n];
                    let esc_ref = ref_predict_quantize_leveled(
                        &mut buf_ref, dims, &params, &qf, &mut sym_ref,
                    );
                    assert_eq!(esc_new, esc_ref, "leveled escapes diverged: {tag}");
                    assert_eq!(sym_new, sym_ref, "leveled symbols diverged: {tag}");
                    for (i, (a, b)) in buf_new.iter().zip(&buf_ref).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "leveled reconstruction diverged at {i}: {tag}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cubic_beats_linear_on_smooth_curves() {
        let data: Vec<f32> = (0..1024)
            .map(|i| ((i as f64) * 0.01).sin() as f32 * 100.0)
            .collect();
        let q = LinearQuantizer::new(1e-4);
        let sum_mag = |fitting| {
            let params = InterpParams::new(fitting);
            let mut buf = data.clone();
            let mut symbols = vec![0u32; data.len()];
            predict_quantize(&mut buf, &[1024], &params, &q, &mut symbols);
            symbols
                .iter()
                .filter(|&&s| s != ESCAPE)
                .map(|&s| cliz_quant::symbol_to_bin(s).unsigned_abs() as u64)
                .sum::<u64>()
        };
        let lin = sum_mag(Fitting::Linear);
        let cub = sum_mag(Fitting::Cubic);
        assert!(cub < lin, "cubic bins {cub} !< linear bins {lin}");
    }
}
