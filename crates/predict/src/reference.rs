//! Frozen pre-rewrite reference for the encode-side interpolation pass.
//!
//! [`ref_predict_quantize`] is the predict/quantize path exactly as it stood
//! before the branch-hoisted kernel rewrite: the per-point branchy traversal
//! (mask test, fitting dispatch, and bounds checks inside every iteration)
//! and the `.round()`-based quantizer step. It is kept verbatim as an
//! executable specification — differential tests pin the live kernel's
//! escape count, symbol grid, and in-place reconstruction bit-identical
//! against it, and `stage_bench` measures the live kernel's speedup over it
//! in the same process.
//!
//! Do not optimize or refactor this module; it is the measuring stick.
//! The fit-coefficient helpers (`cubic_coeffs`/`linear_coeffs`) are shared
//! with the live path because they are pure value tables untouched by the
//! rewrite.

use crate::fitting::{cubic_coeffs, linear_coeffs, Fitting};
use crate::interp::InterpParams;
use cliz_quant::{bin_to_symbol, LinearQuantizer, Quantized, ESCAPE};

/// Row-major strides for `dims` (frozen copy).
fn ref_strides_of(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Frozen copy of the quantization step (`2·eb`): the reference keeps its
/// own named eb-scaling helper (xtask rule R8) so the frozen arithmetic
/// stays verbatim without reaching into the live quantizer's private one.
#[inline]
fn ref_eb_step(q: &LinearQuantizer) -> f64 {
    2.0 * q.eb()
}

/// Pre-rewrite quantization step: `.round()` on the bin estimate, then the
/// range-checked narrowing, exactly as `LinearQuantizer::quantize` computed
/// it before the fused `quantize_round_index` helper existed.
#[inline]
fn ref_quantize(q: &LinearQuantizer, value: f32, pred: f64) -> Quantized {
    let err = f64::from(value) - pred;
    let step = ref_eb_step(q);
    let bin_f = (err / step).round();
    let Some(bin) = cliz_grid::cast::quantize_index(bin_f, q.radius()) else {
        return Quantized::Escape;
    };
    let Some(recon) = cliz_grid::cast::f64_to_f32_checked(pred + step * f64::from(bin)) else {
        return Quantized::Escape;
    };
    if !((f64::from(recon) - f64::from(value)).abs() <= q.eb()) {
        return Quantized::Escape;
    }
    Quantized::Bin {
        symbol: bin_to_symbol(bin),
        recon,
    }
}

/// Frozen pre-rewrite [`crate::predict_quantize`].
pub fn ref_predict_quantize(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer: &LinearQuantizer,
    symbols: &mut [u32],
) -> usize {
    ref_predict_quantize_leveled(buf, dims, params, &|_| *quantizer, symbols)
}

/// Frozen pre-rewrite [`crate::predict_quantize_leveled`]: the per-point
/// `quantizer_for` dyn call is retained (the live path caches it per
/// stride), as is the per-point mask test.
// xtask-allow-fn: R5 -- frozen pre-rewrite reference; ref_walk() only visits idx < dims product == buf.len(), asserted at entry
pub fn ref_predict_quantize_leveled(
    buf: &mut [f32],
    dims: &[usize],
    params: &InterpParams,
    quantizer_for: &dyn Fn(usize) -> LinearQuantizer,
    symbols: &mut [u32],
) -> usize {
    let expected: usize = dims.iter().product();
    assert_eq!(buf.len(), expected, "buffer/shape mismatch");
    assert_eq!(symbols.len(), expected, "symbol grid/shape mismatch");
    if let Some(m) = params.mask {
        assert_eq!(m.len(), expected);
    }

    let zero_sym = bin_to_symbol(0);
    let mut escapes = 0usize;
    ref_walk(dims, params, buf, |buf, idx, stride, pred| {
        if !params.mask.is_none_or(|m| m[idx]) {
            symbols[idx] = zero_sym;
            return;
        }
        match ref_quantize(&quantizer_for(stride), buf[idx], pred) {
            Quantized::Bin { symbol, recon } => {
                symbols[idx] = symbol;
                buf[idx] = recon;
            }
            Quantized::Escape => {
                symbols[idx] = ESCAPE;
                escapes += 1;
            }
        }
    });
    escapes
}

/// Frozen pre-rewrite traversal skeleton (per-point branchy inner loops).
fn ref_walk<F>(dims: &[usize], params: &InterpParams, buf: &mut [f32], mut visit: F)
where
    F: FnMut(&mut [f32], usize, usize, f64),
{
    let ndim = dims.len();
    let strides = ref_strides_of(dims);
    let max_dim = dims.iter().copied().max().unwrap_or(1);

    visit(buf, 0, 0, 0.0);
    if max_dim <= 1 {
        return;
    }

    let mut s = 1usize;
    while s * 2 < max_dim {
        s *= 2;
    }

    let fitting = params.fitting;
    let mask = params.mask;
    let mut coords = vec![0usize; ndim];

    while s >= 1 {
        for d in 0..ndim {
            if dims[d] <= s {
                continue;
            }
            coords.fill(0);
            let dim_stride = strides[d];
            let dim_len = dims[d];
            'outer: loop {
                let mut base = 0usize;
                for e in 0..ndim {
                    if e != d {
                        base += coords[e] * strides[e];
                    }
                }
                let mut i = s;
                while i < dim_len {
                    let idx = base + i * dim_stride;
                    let pred =
                        ref_predict_at(buf, mask, idx, i, dim_len, dim_stride, s, fitting);
                    visit(buf, idx, s, pred);
                    i += 2 * s;
                }
                let mut e = ndim;
                loop {
                    if e == 0 {
                        break 'outer;
                    }
                    e -= 1;
                    if e == d {
                        continue;
                    }
                    let step = if e < d { s } else { 2 * s };
                    coords[e] += step;
                    if coords[e] < dims[e] {
                        break;
                    }
                    coords[e] = 0;
                }
            }
        }
        if s == 1 {
            break;
        }
        s /= 2;
    }
}

/// Frozen pre-rewrite fit prediction (mask test and fitting dispatch inside
/// the per-point call).
// xtask-allow-fn: R5 -- frozen pre-rewrite reference; neighbour offsets are bounds-checked against dim_len before use
#[inline]
fn ref_predict_at(
    buf: &[f32],
    mask: Option<&[bool]>,
    idx: usize,
    i: usize,
    dim_len: usize,
    dim_stride: usize,
    s: usize,
    fitting: Fitting,
) -> f64 {
    if mask.is_none() {
        let step = s * dim_stride;
        match fitting {
            Fitting::Linear if i >= s && i + s < dim_len => {
                return 0.5 * (buf[idx - step] as f64 + buf[idx + step] as f64);
            }
            Fitting::Cubic if i >= 3 * s && i + 3 * s < dim_len => {
                let d0 = buf[idx - 3 * step] as f64;
                let d1 = buf[idx - step] as f64;
                let d2 = buf[idx + step] as f64;
                let d3 = buf[idx + 3 * step] as f64;
                return (9.0 / 16.0) * (d1 + d2) - (1.0 / 16.0) * (d0 + d3);
            }
            _ => {}
        }
    }

    let avail = |offset_steps: isize| -> Option<usize> {
        let pos = i as isize + offset_steps * s as isize;
        if pos < 0 || pos as usize >= dim_len {
            return None;
        }
        let j = idx - i * dim_stride + pos as usize * dim_stride;
        if mask.is_some_and(|m| !m[j]) {
            return None;
        }
        Some(j)
    };
    match fitting {
        Fitting::Linear => {
            let refs = [avail(-1), avail(1)];
            let c = linear_coeffs([refs[0].is_some(), refs[1].is_some()]);
            let mut p = 0.0f64;
            for (r, &coef) in refs.iter().zip(&c) {
                if let Some(j) = r {
                    p += coef * buf[*j] as f64;
                }
            }
            p
        }
        Fitting::Cubic => {
            let refs = [avail(-3), avail(-1), avail(1), avail(3)];
            let c = cubic_coeffs([
                refs[0].is_some(),
                refs[1].is_some(),
                refs[2].is_some(),
                refs[3].is_some(),
            ]);
            let mut p = 0.0f64;
            for (r, &coef) in refs.iter().zip(&c) {
                if let Some(j) = r {
                    p += coef * buf[*j] as f64;
                }
            }
            p
        }
    }
}
