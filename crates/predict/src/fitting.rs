//! Fit coefficients, including the mask-aware Theorem 1 formula.
//!
//! A prediction references up to four reconstructed neighbours
//! `d0, d1, d2, d3` at offsets `−3s, −s, +s, +3s` from the target. Each
//! neighbour has a validity flag (in bounds *and* unmasked). The paper's
//! Theorem 1 gives closed-form optimal polynomial-fit coefficients for every
//! validity combination:
//!
//! ```text
//! p_i = Π_j ( v_j · M[i][j] + (1 − v_j) · B[i][j] )
//! ```
//!
//! With all four valid this reproduces the classic cubic
//! `(−1/16, 9/16, 9/16, −1/16)`; with three valid it degrades to the
//! quadratic fits of Table II; with two valid to exact linear
//! inter/extrapolation; with one to a copy; with none to zero.

/// Which fitting family the pipeline uses (auto-tuned per dataset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fitting {
    /// Two-point average of the `±s` neighbours.
    Linear,
    /// Four-point cubic over `±s, ±3s`.
    Cubic,
}

impl Fitting {
    pub fn label(&self) -> &'static str {
        match self {
            Fitting::Linear => "Linear",
            Fitting::Cubic => "Cubic",
        }
    }
}

/// Theorem 1's `M` matrix (row = coefficient index, column = validity index).
const M: [[f64; 4]; 4] = [
    [1.0, -0.5, 0.25, 0.5],
    [1.5, 1.0, 0.5, 0.75],
    [0.75, 0.5, 1.0, 1.5],
    [0.5, 0.25, -0.5, 1.0],
];

/// Theorem 1's `B` matrix: zero diagonal kills the coefficient of an invalid
/// reference; off-diagonal ones leave other factors untouched.
const B: [[f64; 4]; 4] = [
    [0.0, 1.0, 1.0, 1.0],
    [1.0, 0.0, 1.0, 1.0],
    [1.0, 1.0, 0.0, 1.0],
    [1.0, 1.0, 1.0, 0.0],
];

/// All 16 coefficient vectors, indexed by the validity bitmask
/// `v0 | v1<<1 | v2<<2 | v3<<3`. Built once at first use.
fn coeff_table() -> &'static [[f64; 4]; 16] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f64; 4]; 16]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [[0.0f64; 4]; 16];
        for (bits, row) in table.iter_mut().enumerate() {
            for i in 0..4 {
                let mut p = 1.0f64;
                for j in 0..4 {
                    let v = (bits >> j & 1) as f64;
                    p *= v * M[i][j] + (1.0 - v) * B[i][j];
                }
                row[i] = p;
            }
        }
        table
    })
}

/// Cubic-fit coefficients for a validity combination, per Theorem 1.
#[inline]
pub fn cubic_coeffs(valid: [bool; 4]) -> [f64; 4] {
    let bits = valid[0] as usize
        | (valid[1] as usize) << 1
        | (valid[2] as usize) << 2
        | (valid[3] as usize) << 3;
    coeff_table()[bits]
}

/// Linear-fit coefficients over the `±s` neighbours `(d1, d2)`:
/// average when both valid, copy when one, zero when none.
#[inline]
pub fn linear_coeffs(valid: [bool; 2]) -> [f64; 2] {
    match valid {
        [true, true] => [0.5, 0.5],
        [true, false] => [1.0, 0.0],
        [false, true] => [0.0, 1.0],
        [false, false] => [0.0, 0.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn all_valid_is_classic_cubic() {
        close(
            &cubic_coeffs([true; 4]),
            &[-1.0 / 16.0, 9.0 / 16.0, 9.0 / 16.0, -1.0 / 16.0],
        );
    }

    #[test]
    fn table2_quadratic_rows() {
        // Paper Table II: validity -> coefficients with one invalid point.
        close(
            &cubic_coeffs([false, true, true, true]),
            &[0.0, 3.0 / 8.0, 3.0 / 4.0, -1.0 / 8.0],
        );
        close(
            &cubic_coeffs([true, false, true, true]),
            &[1.0 / 8.0, 0.0, 9.0 / 8.0, -1.0 / 4.0],
        );
        close(
            &cubic_coeffs([true, true, false, true]),
            &[-1.0 / 4.0, 9.0 / 8.0, 0.0, 1.0 / 8.0],
        );
        close(
            &cubic_coeffs([true, true, true, false]),
            &[-1.0 / 8.0, 3.0 / 4.0, 3.0 / 8.0, 0.0],
        );
    }

    #[test]
    fn two_valid_is_exact_linear() {
        // d1 (−s) and d2 (+s): plain average.
        close(&cubic_coeffs([false, true, true, false]), &[0.0, 0.5, 0.5, 0.0]);
        // d2 (+s) and d3 (+3s): extrapolate back to 0 -> 1.5·d2 − 0.5·d3.
        close(&cubic_coeffs([false, false, true, true]), &[0.0, 0.0, 1.5, -0.5]);
        // d0 (−3s) and d1 (−s): forward extrapolation -> −0.5·d0 + 1.5·d1.
        close(&cubic_coeffs([true, true, false, false]), &[-0.5, 1.5, 0.0, 0.0]);
        // d0 (−3s) and d2 (+s): interpolate -> 0.25·d0 + 0.75·d2.
        close(&cubic_coeffs([true, false, true, false]), &[0.25, 0.0, 0.75, 0.0]);
    }

    #[test]
    fn one_valid_is_copy() {
        for k in 0..4 {
            let mut v = [false; 4];
            v[k] = true;
            let c = cubic_coeffs(v);
            for (i, &ci) in c.iter().enumerate() {
                assert_eq!(ci, if i == k { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn none_valid_is_zero() {
        close(&cubic_coeffs([false; 4]), &[0.0; 4]);
    }

    #[test]
    fn invalid_references_always_get_zero_coefficient() {
        for bits in 0..16usize {
            let v = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0];
            let c = cubic_coeffs(v);
            for j in 0..4 {
                if !v[j] {
                    assert_eq!(c[j], 0.0, "mask bits {bits:04b}");
                }
            }
        }
    }

    /// Every coefficient vector must reproduce polynomials of the fit's
    /// degree exactly: for k >= 2 valid points the fit is exact on all
    /// polynomials of degree (#valid − 1) capped at 3, evaluated on the
    /// reference offsets −3, −1, +1, +3 with target at 0.
    #[test]
    fn polynomial_exactness() {
        let offsets = [-3.0f64, -1.0, 1.0, 3.0];
        for bits in 0..16usize {
            let v = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0];
            let nv = v.iter().filter(|&&b| b).count();
            if nv < 1 {
                continue;
            }
            let degree = (nv - 1).min(3);
            let c = cubic_coeffs(v);
            for d in 0..=degree {
                let target: f64 = 0.0f64.powi(d as i32); // 1 for d=0, else 0
                let target = if d == 0 { 1.0 } else { target };
                let fit: f64 = (0..4).map(|j| c[j] * offsets[j].powi(d as i32)).sum();
                assert!(
                    (fit - target).abs() < 1e-9,
                    "bits {bits:04b} degree {d}: fit {fit} target {target}"
                );
            }
        }
    }

    #[test]
    fn linear_coeff_cases() {
        assert_eq!(linear_coeffs([true, true]), [0.5, 0.5]);
        assert_eq!(linear_coeffs([true, false]), [1.0, 0.0]);
        assert_eq!(linear_coeffs([false, true]), [0.0, 1.0]);
        assert_eq!(linear_coeffs([false, false]), [0.0, 0.0]);
    }
}
