//! `zlite` — a from-scratch LZ77 + canonical-Huffman lossless codec.
//!
//! SZ3 (and therefore CliZ) finishes its pipeline with a byte-level lossless
//! pass over the Huffman-coded quantization stream; the reference
//! implementation uses Zstd. This crate is the offline substitute: a
//! deflate-class coder with a 32 KiB sliding window, hash-chain match
//! finding, and separate literal/length and distance Huffman alphabets.
//! It is not Zstd — but it removes the same residual byte-level redundancy,
//! which is all the compression-ratio comparisons in the paper need.
//!
//! Format (`ZLT1`): `magic u32 | raw_len u64 | mode u8 | payload`.
//! `mode 0` stores bytes verbatim (used when compression does not pay);
//! `mode 1` is the LZ+Huffman bitstream.

// Decode paths must never panic on untrusted input (see docs/STATIC_ANALYSIS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codes;
pub mod format;
pub mod lz;
pub mod reference;

pub use format::{compress, compress_with, decompress, Error};
pub use lz::Effort;
