//! Length/distance symbol tables (deflate-style bucketing).
//!
//! Match lengths 3..=258 map to 29 symbols, distances 1..=32768 to 30 —
//! each symbol carries a base value plus a few literal extra bits, keeping
//! both Huffman alphabets small while covering the whole range.

/// Literal alphabet size (bytes 0..=255) plus end-of-block marker.
pub const EOB: u32 = 256;
/// First length symbol; length symbol `i` is `LEN_SYM_BASE + i`.
pub const LEN_SYM_BASE: u32 = 257;
/// Total size of the literal/length alphabet.
pub const LITLEN_ALPHABET: usize = 257 + 29;
/// Total size of the distance alphabet.
pub const DIST_ALPHABET: usize = 30;

/// Minimum/maximum match length produced by the matcher.
pub const MIN_MATCH: usize = 3;
pub const MAX_MATCH: usize = 258;
/// Sliding-window size (maximum backward distance).
pub const WINDOW: usize = 32 * 1024;

/// `(base_length, extra_bits)` for each of the 29 length codes.
pub const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
];

/// `(base_distance, extra_bits)` for each of the 30 distance codes.
pub const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1),
    (9, 2), (13, 2),
    (17, 3), (25, 3),
    (33, 4), (49, 4),
    (65, 5), (97, 5),
    (129, 6), (193, 6),
    (257, 7), (385, 7),
    (513, 8), (769, 8),
    (1025, 9), (1537, 9),
    (2049, 10), (3073, 10),
    (4097, 11), (6145, 11),
    (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
];

/// Last `LENGTH_TABLE` index whose base is ≤ `len`, for every admissible
/// length — built at compile time so the per-token hot path is one byte
/// load instead of a binary search.
const fn build_length_sym() -> [u8; MAX_MATCH - MIN_MATCH + 1] {
    let mut t = [0u8; MAX_MATCH - MIN_MATCH + 1];
    let mut i = 0;
    while i < t.len() {
        let len = i + MIN_MATCH;
        let mut idx = 0;
        let mut j = 0;
        while j < LENGTH_TABLE.len() {
            if LENGTH_TABLE[j].0 as usize <= len {
                idx = j;
            }
            j += 1;
        }
        t[i] = idx as u8;
        i += 1;
    }
    t
}

static LENGTH_SYM: [u8; MAX_MATCH - MIN_MATCH + 1] = build_length_sym();

/// Distance-symbol lookup, split in two tiers: distances ≤ 256 index a
/// direct table by `dist - 1`; larger distances index by `(dist - 1) / 128`,
/// which is exact because every `DIST_TABLE` base above 256 sits on a
/// 128-aligned boundary (`base - 1` is a multiple of 128).
const fn build_dist_sym(shift: u32) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let dist = (i << shift) + 1;
        let mut idx = 0;
        let mut j = 0;
        while j < DIST_TABLE.len() {
            if DIST_TABLE[j].0 as usize <= dist {
                idx = j;
            }
            j += 1;
        }
        t[i] = idx as u8;
        i += 1;
    }
    t
}

static DIST_SYM_LO: [u8; 256] = build_dist_sym(0);
static DIST_SYM_HI: [u8; 256] = build_dist_sym(7);

/// Maps a match length (3..=258) to `(symbol_offset, extra_bits, extra_value)`.
#[inline]
pub fn length_code(len: usize) -> (u32, u8, u32) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let idx = LENGTH_SYM[len - MIN_MATCH] as usize;
    let (base, extra) = LENGTH_TABLE[idx];
    (idx as u32, extra, (len - base as usize) as u32)
}

/// Maps a distance (1..=32768) to `(symbol, extra_bits, extra_value)`.
#[inline]
pub fn dist_code(dist: usize) -> (u32, u8, u32) {
    debug_assert!((1..=WINDOW).contains(&dist));
    let idx = if dist <= 256 {
        DIST_SYM_LO[dist - 1] as usize
    } else {
        DIST_SYM_HI[(dist - 1) >> 7] as usize
    };
    let (base, extra) = DIST_TABLE[idx];
    (idx as u32, extra, (dist - base as usize) as u32)
}

/// Inverse of [`length_code`]: base length and extra-bit count for a symbol.
#[inline]
pub fn length_decode(sym: u32) -> (usize, u8) {
    let (base, extra) = LENGTH_TABLE[sym as usize];
    (base as usize, extra)
}

/// Inverse of [`dist_code`].
#[inline]
pub fn dist_decode(sym: u32) -> (usize, u8) {
    let (base, extra) = DIST_TABLE[sym as usize];
    (base as usize, extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_length_roundtrips() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (sym, extra, val) = length_code(len);
            let (base, extra2) = length_decode(sym);
            assert_eq!(extra, extra2);
            assert_eq!(base + val as usize, len, "len {len}");
            assert!(val < (1u32 << extra) || extra == 0 && val == 0);
        }
    }

    #[test]
    fn every_distance_roundtrips() {
        for dist in 1..=WINDOW {
            let (sym, extra, val) = dist_code(dist);
            let (base, extra2) = dist_decode(sym);
            assert_eq!(extra, extra2);
            assert_eq!(base + val as usize, dist, "dist {dist}");
        }
    }

    #[test]
    fn boundary_codes() {
        assert_eq!(length_code(3), (0, 0, 0));
        assert_eq!(length_code(258), (28, 0, 0));
        assert_eq!(dist_code(1), (0, 0, 0));
        let (sym, extra, val) = dist_code(WINDOW);
        assert_eq!(sym, 29);
        assert_eq!(24577 + val as usize, WINDOW);
        assert_eq!(extra, 13);
    }

    #[test]
    fn alphabets_cover_symbols() {
        assert_eq!(LITLEN_ALPHABET, LEN_SYM_BASE as usize + LENGTH_TABLE.len());
        assert_eq!(DIST_ALPHABET, DIST_TABLE.len());
    }
}
