//! LZ77 match finder.
//!
//! Greedy parse with one-byte lazy evaluation (deflate's classic heuristic):
//! before emitting a match at `i`, peek whether `i+1` offers a strictly
//! longer one; if so, emit a literal and advance. Candidates are indexed by
//! 3-byte prefix hash; walks are capped so worst-case inputs stay linear.
//!
//! The kernel is word-oriented. Match extension compares 8 bytes per step
//! (u64 XOR + `trailing_zeros`), run insertion derives six 3-byte hashes
//! from one u64 load, and candidates are pre-filtered with an 8-byte (or
//! 4-byte, below `best_len == 7`) reject probe at the current best length.
//! Two index structures implement the same candidate enumeration:
//!
//! * [`BucketIndex`] — the default-effort path. Each hash bucket is a ring
//!   of the last [`SLOTS`] positions, so a walk is a bounds-free array scan
//!   (newest first) instead of a pointer chase. Because chain order *is*
//!   insertion order, the ring enumerates exactly the candidates a chain
//!   walk would visit whenever `max_chain <= SLOTS`, and positions along it
//!   are strictly decreasing, so the window cut can be located once up
//!   front instead of being re-checked per candidate.
//! * [`ChainIndex`] — the fallback for `max_chain > SLOTS`: classic hash
//!   chains with u16 distance-delta links (the link table fits in 64 KiB).
//!   A clamped or stale link is always > [`WINDOW`], so the walk breaks on
//!   its distance check before ever dereferencing a bogus target.
//!
//! Both reproduce the byte-wise scan in [`crate::reference::ref_tokenize`]
//! token-for-token at every effort level — the differential and adversarial
//! suites pin that. See docs/PERFORMANCE.md ("Encode kernel architecture")
//! for the equivalence arguments and the measured speedups.

use crate::codes::{MAX_MATCH, MIN_MATCH, WINDOW};

/// One parsed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    Literal(u8),
    /// Back-reference: copy `len` bytes starting `dist` bytes back.
    Match { len: u32, dist: u32 },
}

/// Match-finder effort: how many chain links to inspect per position.
#[derive(Clone, Copy, Debug)]
pub struct Effort {
    pub max_chain: usize,
    /// Stop searching once a match of this length is found.
    pub good_enough: usize,
}

impl Default for Effort {
    fn default() -> Self {
        Self {
            max_chain: 64,
            good_enough: 96,
        }
    }
}

impl Effort {
    /// Throughput-biased profile: shorter chain walks and an earlier
    /// "good enough" cutoff. Unlike [`Effort::default`], whose token stream
    /// is pinned byte-identical to the frozen reference, `fast` only
    /// promises lossless roundtrips and a bounded ratio give-up — the
    /// adversarial suite gates both.
    pub fn fast() -> Self {
        Self {
            max_chain: 8,
            good_enough: 32,
        }
    }
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// `head` sentinel: hash bucket is empty.
const NO_POS: u32 = u32::MAX;

/// Ring capacity per [`BucketIndex`] bucket. Walks enumerate the newest
/// `min(count, max_chain)` entries, so the ring is an exact stand-in for a
/// chain walk whenever `max_chain <= SLOTS`.
const SLOTS: usize = 64;

// xtask-allow-fn: R1, R5 -- encoder-side hashing; every call site guarantees i+2 < data.len()
#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    // Multiplicative hash of a 3-byte little-endian load.
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Same multiplicative hash, applied to a 24-bit lane of a wider load.
#[inline]
fn hash3_word(v: u32) -> usize {
    ((v & 0x00FF_FFFF).wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

// xtask-allow-fn: R1, R5 -- encoder-side unaligned load; callers guarantee i + 4 <= data.len()
#[inline]
fn load4(data: &[u8], i: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[i..i + 4]);
    u32::from_le_bytes(b)
}

// xtask-allow-fn: R1, R5 -- encoder-side unaligned load; callers guarantee i + 8 <= data.len()
#[inline]
fn load8(data: &[u8], i: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[i..i + 8]);
    u64::from_le_bytes(b)
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max_len`: 8 bytes per step via XOR + `trailing_zeros` (the first set bit
/// of the LE word difference sits in the first differing byte).
// xtask-allow-fn: R1, R5 -- encoder-side comparison; callers guarantee b + max_len <= data.len() and a < b
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    let mut l = 0usize;
    while l + 8 <= max_len {
        let x = load8(data, a + l) ^ load8(data, b + l);
        if x != 0 {
            return l + (x.trailing_zeros() >> 3) as usize;
        }
        l += 8;
    }
    while l < max_len && data[a + l] == data[b + l] {
        l += 1;
    }
    l
}

/// Candidate index shared by the parse loop. `find_best` returns
/// `(len, dist)` of the best match at `i`, or `(0, 0)` when no candidate
/// beats `floor` (see [`parse`] for why a raised floor is exact).
trait MatchIndex {
    /// Inserts position `pos`, whose 3-byte prefix hashes to `h`.
    fn insert_hash(&mut self, h: usize, pos: usize);

    fn find_best(&self, data: &[u8], i: usize, effort: Effort, floor: usize) -> (usize, usize);

    // xtask-allow-fn: R1 -- encoder-side table update; callers guarantee i + 2 < data.len()
    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        self.insert_hash(hash3(data, i), i);
    }

    /// Inserts every position in `j..end`, deriving six 3-byte hashes per
    /// u64 load on the interior (the lanes of one little-endian word are
    /// exactly the successive 3-byte windows `hash3` reads).
    // xtask-allow-fn: R1 -- encoder-side batched table update; the loop guards keep every lane load inside data
    #[inline]
    fn insert_run(&mut self, data: &[u8], mut j: usize, end: usize) {
        let n = data.len();
        while j + 6 <= end && j + 8 <= n {
            let w = load8(data, j);
            for k in 0..6 {
                self.insert_hash(hash3_word((w >> (8 * k)) as u32), j + k);
            }
            j += 6;
        }
        while j < end {
            self.insert(data, j);
            j += 1;
        }
    }
}

/// Per-hash ring of the last [`SLOTS`] positions (8 MiB of u32 slots plus a
/// 128 KiB insertion counter). Entry `count - 1 - k` (mod [`SLOTS`]) is the
/// `k`-th newest position, so a walk reads the ring newest-first — the same
/// order a hash-chain walk visits, with no pointer chase and no per-entry
/// link loads. Only `min(count, SLOTS)` entries are ever read, so the slot
/// array needs no initialization beyond the zeroed counters.
struct BucketIndex {
    buf: Vec<u32>,
    cnt: Vec<u32>,
}

impl BucketIndex {
    fn new() -> Self {
        Self {
            buf: vec![0u32; HASH_SIZE * SLOTS],
            cnt: vec![0u32; HASH_SIZE],
        }
    }
}

impl MatchIndex for BucketIndex {
    // xtask-allow-fn: R1 -- ring store sized HASH_SIZE * SLOTS at construction; h < HASH_SIZE from hash3 and the slot index is masked to SLOTS
    #[inline]
    fn insert_hash(&mut self, h: usize, pos: usize) {
        let c = self.cnt[h];
        self.buf[h * SLOTS + (c as usize & (SLOTS - 1))] = pos as u32;
        self.cnt[h] = c + 1;
    }

    /// The walk enumerates ring entries newest-first. A candidate can only
    /// beat `best_len` by matching bytes `0..=best_len`, so a mismatch on
    /// the probed suffix window (`[best_len-7, best_len]` once
    /// `best_len >= 7`, `[best_len-3, best_len]` from 3, the single byte at
    /// `best_len` below that) is fatal — survivors are fully re-extended
    /// from offset 0 just like the reference's byte-wise scan. The walk is
    /// split per probe regime so the steady state (`best_len >= 7`, where
    /// nearly all candidates die on one 8-byte compare) is a minimal loop.
    // xtask-allow-fn: R1, R5 -- encoder-side match finder over caller data; indices are bounded by the scan invariants (cand < i, best_len < max_len <= n - i), not by untrusted input
    #[inline]
    fn find_best(&self, data: &[u8], i: usize, effort: Effort, floor: usize) -> (usize, usize) {
        let n = data.len();
        let max_len = MAX_MATCH.min(n - i);
        if max_len < MIN_MATCH || floor >= max_len {
            return (0, 0);
        }
        let h = hash3(data, i);
        let c = self.cnt[h] as usize;
        let mut avail = c.min(SLOTS).min(effort.max_chain);
        if avail == 0 {
            return (0, 0);
        }
        let bucket = &self.buf[h * SLOTS..h * SLOTS + SLOTS];
        let idx0 = (c - 1) & (SLOTS - 1);
        // Ring positions are strictly decreasing newest-first, so the window
        // boundary is a prefix cut: locate it once (rare — a few percent of
        // calls) instead of distance-checking every candidate.
        let limit = i.saturating_sub(WINDOW) as u32;
        if bucket[idx0.wrapping_sub(avail - 1) & (SLOTS - 1)] < limit {
            let mut k = 0usize;
            while k < avail && bucket[idx0.wrapping_sub(k) & (SLOTS - 1)] >= limit {
                k += 1;
            }
            avail = k;
            if avail == 0 {
                return (0, 0);
            }
        }
        let mut best_len = floor;
        let mut best_dist = 0usize;
        let mut probe8 = 0u64;
        let mut probe4 = 0u32;
        // In-bounds: floor < max_len <= n - i.
        if best_len >= 7 {
            probe8 = load8(data, i + best_len - 7);
        } else if best_len >= MIN_MATCH {
            probe4 = load4(data, i + best_len - 3);
        }
        let mut k = 0usize;
        'walk: while k < avail {
            if best_len >= 7 {
                // Steady state: one 8-byte probe per candidate.
                let off = best_len - 7;
                while k < avail {
                    let cand = bucket[idx0.wrapping_sub(k) & (SLOTS - 1)] as usize;
                    k += 1;
                    if load8(data, cand + off) != probe8 {
                        continue;
                    }
                    let l = match_len(data, cand, i, max_len);
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l >= effort.good_enough || l == max_len {
                            break 'walk;
                        }
                        probe8 = load8(data, i + l - 7);
                        // off/probe8 changed: restart the regime loop.
                        continue 'walk;
                    }
                }
            } else if best_len >= MIN_MATCH {
                while k < avail {
                    let cand = bucket[idx0.wrapping_sub(k) & (SLOTS - 1)] as usize;
                    k += 1;
                    if load4(data, cand + best_len - 3) != probe4 {
                        continue;
                    }
                    let l = match_len(data, cand, i, max_len);
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l >= effort.good_enough || l == max_len {
                            break 'walk;
                        }
                        if l >= 7 {
                            probe8 = load8(data, i + l - 7);
                        } else {
                            probe4 = load4(data, i + l - 3);
                        }
                        continue 'walk;
                    }
                }
            } else {
                while k < avail {
                    let cand = bucket[idx0.wrapping_sub(k) & (SLOTS - 1)] as usize;
                    k += 1;
                    if best_len != 0 && data[cand + best_len] != data[i + best_len] {
                        continue;
                    }
                    let l = match_len(data, cand, i, max_len);
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l >= effort.good_enough || l == max_len {
                            break 'walk;
                        }
                        if l >= 7 {
                            probe8 = load8(data, i + l - 7);
                        } else if l >= MIN_MATCH {
                            probe4 = load4(data, i + l - 3);
                        }
                        continue 'walk;
                    }
                }
            }
        }
        if best_dist == 0 {
            (0, 0)
        } else {
            (best_len, best_dist)
        }
    }
}

/// Chain link for position `i` whose previous bucket occupant was `old`:
/// 0 terminates the chain, otherwise the distance back to the predecessor,
/// clamped to `u16::MAX`. A clamped link is always > `WINDOW`, so the walk
/// breaks on its distance check before ever dereferencing the bogus target.
#[inline]
fn link_delta(i: usize, old: u32) -> u16 {
    if old == NO_POS {
        0
    } else {
        (i - old as usize).min(u16::MAX as usize) as u16
    }
}

/// Classic hash chains, kept for efforts deeper than [`SLOTS`]:
/// `head[h]` = most recent position with hash `h` (128 KiB);
/// `prev[i & (WINDOW-1)]` = u16 delta back to the previous position in
/// `i`'s chain (64 KiB, so the pointer-chased table is two L1 loads wide
/// instead of eight).
struct ChainIndex {
    head: Vec<u32>,
    prev: Vec<u16>,
}

impl ChainIndex {
    fn new() -> Self {
        Self {
            head: vec![NO_POS; HASH_SIZE],
            prev: vec![0u16; WINDOW],
        }
    }
}

impl MatchIndex for ChainIndex {
    #[inline]
    fn insert_hash(&mut self, h: usize, pos: usize) {
        let old = self.head[h];
        self.head[h] = pos as u32;
        self.prev[pos & (WINDOW - 1)] = link_delta(pos, old);
    }

    // xtask-allow-fn: R1, R5 -- encoder-side match finder over caller data; indices are bounded by the scan invariants (cand < i, best_len < max_len <= n - i), not by untrusted input
    #[inline]
    fn find_best(&self, data: &[u8], i: usize, effort: Effort, floor: usize) -> (usize, usize) {
        let n = data.len();
        let max_len = MAX_MATCH.min(n - i);
        if max_len < MIN_MATCH || floor >= max_len {
            return (0, 0);
        }
        let first = self.head[hash3(data, i)];
        let mut chains = effort.max_chain;
        if first == NO_POS || chains == 0 {
            return (0, 0);
        }
        let mut best_len = floor;
        let mut best_dist = 0usize;
        let mut cand = first as usize;
        let mut probe8 = 0u64;
        let mut probe4 = 0u32;
        if best_len >= 7 {
            probe8 = load8(data, i + best_len - 7);
        } else if best_len >= MIN_MATCH {
            probe4 = load4(data, i + best_len - 3);
        }
        loop {
            let dist = i.wrapping_sub(cand);
            if dist > WINDOW {
                break;
            }
            if best_len == max_len {
                break;
            }
            // Quick reject: a candidate can only beat `best_len` by matching
            // bytes 0..=best_len, so any mismatch inside that range is fatal.
            // (In-bounds because best_len < max_len <= n - i, and cand < i.)
            let viable = if best_len >= 7 {
                load8(data, cand + best_len - 7) == probe8
            } else if best_len >= MIN_MATCH {
                load4(data, cand + best_len - 3) == probe4
            } else {
                best_len == 0 || data[cand + best_len] == data[i + best_len]
            };
            if viable {
                let l = match_len(data, cand, i, max_len);
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= effort.good_enough || l == max_len {
                        break;
                    }
                    if l >= 7 {
                        probe8 = load8(data, i + l - 7);
                    } else if l >= MIN_MATCH {
                        probe4 = load4(data, i + l - 3);
                    }
                }
            }
            let d = self.prev[cand & (WINDOW - 1)];
            if d == 0 {
                break;
            }
            cand = cand.wrapping_sub(d as usize);
            chains -= 1;
            if chains == 0 {
                break;
            }
        }
        if best_dist == 0 {
            (0, 0)
        } else {
            (best_len, best_dist)
        }
    }
}

/// The shared greedy/lazy parse, generic over the candidate index.
///
/// Two exact refinements over the reference's literal restatement, both
/// pinned by the differential suites:
///
/// * **Lazy floor.** The lazy probe at `i+1` only influences the parse when
///   it strictly beats `len`, so `find_best` starts its reject threshold at
///   `len` instead of 0. Candidates at or below the floor never survive to
///   an update in the reference walk either (updates require `l > best`,
///   and `len < good_enough` whenever the probe runs, so no skipped
///   candidate could have fired the `good_enough` break), hence the
///   first-candidate-attaining-the-maximum result is unchanged whenever it
///   matters.
/// * **Carry memoization.** When the lazy probe wins, the reference
///   re-walks position `i+1` at the top of the next iteration with an
///   identical table state (position `i` was inserted before the probe);
///   the probe's result is carried instead of recomputed.
// xtask-allow-fn: R1, R5 -- encoder-side parse loop over caller data; every index is i < n maintained by the loop, not untrusted input
fn parse<I: MatchIndex>(data: &[u8], effort: Effort, mut ix: I, tokens: &mut Vec<Token>) {
    let n = data.len();
    let mut i = 0usize;
    let mut carry: Option<(usize, usize)> = None;
    while i < n {
        if i + MIN_MATCH > n {
            tokens.push(Token::Literal(data[i]));
            i += 1;
            continue;
        }
        let (len, dist) = match carry.take() {
            Some(r) => r,
            None => ix.find_best(data, i, effort, 0),
        };
        if len >= MIN_MATCH {
            // Lazy heuristic: literal + longer match at i+1 beats match at i.
            let take_match = if i + 1 + MIN_MATCH <= n && len < effort.good_enough {
                ix.insert(data, i);
                let r2 = ix.find_best(data, i + 1, effort, len);
                if r2.0 > len {
                    tokens.push(Token::Literal(data[i]));
                    i += 1;
                    carry = Some(r2);
                    false
                } else {
                    true
                }
            } else {
                ix.insert(data, i);
                true
            };
            if take_match {
                tokens.push(Token::Match {
                    len: len as u32,
                    dist: dist as u32,
                });
                // Index the covered positions (skip some on long matches to
                // bound cost; deflate does the same above `good_enough`).
                let end = (i + len).min(n - MIN_MATCH);
                if len > 64 {
                    let mut j = i + 1;
                    while j < end {
                        ix.insert(data, j);
                        j += 4;
                    }
                } else {
                    ix.insert_run(data, i + 1, end);
                }
                i += len;
            }
        } else {
            ix.insert(data, i);
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
}

/// Parses `data` into LZ77 tokens.
///
/// Token-for-token identical to [`crate::reference::ref_tokenize`] at every
/// effort level. For `max_chain <= SLOTS` the candidate enumeration runs on
/// [`BucketIndex`] rings (insertion order *is* chain order, so the newest
/// `min(count, max_chain)` ring entries are exactly the chain walk's
/// candidates); deeper efforts fall back to [`ChainIndex`], whose u16
/// delta links encode the same chain the reference's absolute `prev` table
/// does.
pub fn tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // Positions live in u32 slots; the container chunks long before this,
    // so a >4 GiB buffer is a caller bug, not a data-dependent path.
    assert!(n <= u32::MAX as usize, "zlite: input exceeds 4 GiB");

    if effort.max_chain <= SLOTS {
        parse(data, effort, BucketIndex::new(), &mut tokens);
    } else {
        parse(data, effort, ChainIndex::new(), &mut tokens);
    }
    tokens
}

/// Replays tokens into the original bytes.
pub fn detokenize(tokens: &[Token], expected_len: usize) -> Option<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Disjoint source: one memcpy-class copy.
                    out.extend_from_within(start..start + len);
                } else if dist == 1 {
                    // Run-length: repeat the last byte.
                    let b = out[start];
                    out.resize(out.len() + len, b);
                } else {
                    // Overlapping copy is the semantics (period-`dist` fill).
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let tokens = tokenize(data, Effort::default());
        let back = detokenize(&tokens, data.len()).expect("detokenize");
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repeated_text_produces_matches() {
        let data = b"the quick brown fox; the quick brown fox; the quick brown fox".to_vec();
        let tokens = tokenize(&data, Effort::default());
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one back-reference"
        );
        roundtrip(&data);
    }

    #[test]
    fn run_length_overlap() {
        // 1000 identical bytes: should compress into literal + overlapping match(es).
        let data = vec![0x42u8; 1000];
        let tokens = tokenize(&data, Effort::default());
        assert!(tokens.len() < 20, "got {} tokens", tokens.len());
        roundtrip(&data);
    }

    #[test]
    fn incompressible_bytes_roundtrip() {
        // Linear congruential noise — few matches, but must stay correct.
        let mut state = 1u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_range_match_within_window() {
        let mut data = vec![0u8; 0];
        let phrase: Vec<u8> = (0..64u8).collect();
        data.extend_from_slice(&phrase);
        data.extend(std::iter::repeat_n(0xEE, 20_000));
        data.extend_from_slice(&phrase); // 20 KiB back, inside the window
        roundtrip(&data);
    }

    #[test]
    fn deep_effort_uses_chain_fallback() {
        // max_chain above SLOTS exercises ChainIndex; output must match the
        // bucket path's parse on inputs where both walks see every candidate.
        let data = b"abcabcabc abcabcabc abcabcabc tail".to_vec();
        let deep = tokenize(
            &data,
            Effort {
                max_chain: 256,
                good_enough: 96,
            },
        );
        let back = detokenize(&deep, data.len()).expect("detokenize");
        assert_eq!(back, data);
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        let tokens = vec![Token::Literal(1), Token::Match { len: 3, dist: 5 }];
        assert_eq!(detokenize(&tokens, 4), None);
    }

    #[test]
    fn max_match_boundary() {
        let data = vec![7u8; MAX_MATCH + MIN_MATCH + 10];
        roundtrip(&data);
    }
}
