//! Hash-chain LZ77 match finder.
//!
//! Greedy parse with one-byte lazy evaluation (deflate's classic heuristic):
//! before emitting a match at `i`, peek whether `i+1` offers a strictly
//! longer one; if so, emit a literal and advance. Hash chains index 3-byte
//! prefixes; chain walks are capped so worst-case inputs stay linear.

use crate::codes::{MAX_MATCH, MIN_MATCH, WINDOW};

/// One parsed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    Literal(u8),
    /// Back-reference: copy `len` bytes starting `dist` bytes back.
    Match { len: u32, dist: u32 },
}

/// Match-finder effort: how many chain links to inspect per position.
#[derive(Clone, Copy, Debug)]
pub struct Effort {
    pub max_chain: usize,
    /// Stop searching once a match of this length is found.
    pub good_enough: usize,
}

impl Default for Effort {
    fn default() -> Self {
        Self {
            max_chain: 64,
            good_enough: 96,
        }
    }
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

// xtask-allow-fn: R1, R5 -- encoder-side hashing; every call site guarantees i+2 < data.len()
#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    // Multiplicative hash of a 3-byte little-endian load.
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Parses `data` into LZ77 tokens.
// xtask-allow-fn: R1, R5 -- encoder-side match finder over caller data; indices are bounded by the scan invariants (cand < i, best_len < max_len <= n - i), not by untrusted input
pub fn tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h; prev[i & (WINDOW-1)] = the
    // previous position in i's chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];

    let insert = |head: &mut [usize], prev: &mut [usize], data: &[u8], i: usize| {
        let h = hash3(data, i);
        prev[i & (WINDOW - 1)] = head[h];
        head[h] = i;
    };

    let find_best = |head: &[usize], prev: &[usize], data: &[u8], i: usize| -> (usize, usize) {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let max_len = MAX_MATCH.min(n - i);
        if max_len < MIN_MATCH {
            return (0, 0);
        }
        let mut cand = head[hash3(data, i)];
        let mut chains = effort.max_chain;
        while cand != usize::MAX && chains > 0 {
            let dist = i - cand;
            if dist > WINDOW {
                break;
            }
            if best_len == max_len {
                break;
            }
            // Quick reject: check the byte where we must improve (in-bounds
            // because best_len < max_len <= n - i, and cand < i).
            if best_len == 0 || data[cand + best_len] == data[i + best_len] {
                let mut l = 0usize;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= effort.good_enough {
                        break;
                    }
                }
            }
            cand = prev[cand & (WINDOW - 1)];
            chains -= 1;
        }
        (best_len, best_dist)
    };

    let mut i = 0usize;
    while i < n {
        if i + MIN_MATCH > n {
            tokens.push(Token::Literal(data[i]));
            i += 1;
            continue;
        }
        let (len, dist) = find_best(&head, &prev, data, i);
        if len >= MIN_MATCH {
            // Lazy heuristic: literal + longer match at i+1 beats match at i.
            let take_match = if i + 1 + MIN_MATCH <= n && len < effort.good_enough {
                insert(&mut head, &mut prev, data, i);
                let (len2, _) = find_best(&head, &prev, data, i + 1);
                if len2 > len {
                    tokens.push(Token::Literal(data[i]));
                    i += 1;
                    false
                } else {
                    true
                }
            } else {
                insert(&mut head, &mut prev, data, i);
                true
            };
            if take_match {
                tokens.push(Token::Match {
                    len: len as u32,
                    dist: dist as u32,
                });
                // Index the covered positions (skip some on long matches to
                // bound cost; deflate does the same above `good_enough`).
                let end = (i + len).min(n - MIN_MATCH);
                let step = if len > 64 { 4 } else { 1 };
                let mut j = i + 1;
                while j < end {
                    insert(&mut head, &mut prev, data, j);
                    j += step;
                }
                i += len;
            }
        } else {
            insert(&mut head, &mut prev, data, i);
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Replays tokens into the original bytes.
pub fn detokenize(tokens: &[Token], expected_len: usize) -> Option<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                // Overlapping copies are the point (run-length encoding via
                // dist < len), so copy byte-wise.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let tokens = tokenize(data, Effort::default());
        let back = detokenize(&tokens, data.len()).expect("detokenize");
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repeated_text_produces_matches() {
        let data = b"the quick brown fox; the quick brown fox; the quick brown fox".to_vec();
        let tokens = tokenize(&data, Effort::default());
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one back-reference"
        );
        roundtrip(&data);
    }

    #[test]
    fn run_length_overlap() {
        // 1000 identical bytes: should compress into literal + overlapping match(es).
        let data = vec![0x42u8; 1000];
        let tokens = tokenize(&data, Effort::default());
        assert!(tokens.len() < 20, "got {} tokens", tokens.len());
        roundtrip(&data);
    }

    #[test]
    fn incompressible_bytes_roundtrip() {
        // Linear congruential noise — few matches, but must stay correct.
        let mut state = 1u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_range_match_within_window() {
        let mut data = vec![0u8; 0];
        let phrase: Vec<u8> = (0..64u8).collect();
        data.extend_from_slice(&phrase);
        data.extend(std::iter::repeat_n(0xEE, 20_000));
        data.extend_from_slice(&phrase); // 20 KiB back, inside the window
        roundtrip(&data);
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        let tokens = vec![Token::Literal(1), Token::Match { len: 3, dist: 5 }];
        assert_eq!(detokenize(&tokens, 4), None);
    }

    #[test]
    fn max_match_boundary() {
        let data = vec![7u8; MAX_MATCH + MIN_MATCH + 10];
        roundtrip(&data);
    }
}
