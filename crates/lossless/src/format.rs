//! `zlite` container: header, entropy stage, and the public API.

use crate::codes::{
    dist_code, dist_decode, length_code, length_decode, DIST_ALPHABET, EOB, LEN_SYM_BASE,
    LITLEN_ALPHABET,
};
use crate::lz::{tokenize, Effort, Token};
use cliz_entropy::{BitReader, BitWriter, HuffmanDecoder, HuffmanEncoder};
use cliz_format::{spec::ZLT1, FormatError, HeaderReader, HeaderWriter};

pub(crate) const MODE_STORED: u8 = 0;
pub(crate) const MODE_LZ: u8 = 1;

/// Decode failure taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    BadMagic,
    Truncated,
    UnsupportedVersion(u8),
    Corrupt(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadMagic => write!(f, "zlite: bad magic"),
            Error::Truncated => write!(f, "zlite: truncated stream"),
            Error::UnsupportedVersion(v) => write!(f, "zlite: unsupported version {v}"),
            Error::Corrupt(what) => write!(f, "zlite: corrupt stream ({what})"),
        }
    }
}

impl std::error::Error for Error {}

impl From<FormatError> for Error {
    fn from(e: FormatError) -> Self {
        match e {
            FormatError::Truncated => Error::Truncated,
            FormatError::BadMagic => Error::BadMagic,
            FormatError::UnsupportedVersion(v) => Error::UnsupportedVersion(v),
            FormatError::Corrupt(what) => Error::Corrupt(what),
        }
    }
}

/// Compresses `data`. Falls back to stored mode when LZ+Huffman does not
/// shrink the input, so output is never much larger than input
/// (14-byte header worst case).
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with(data, Effort::default())
}

/// [`compress`] with an explicit match-finder effort.
pub fn compress_with(data: &[u8], effort: Effort) -> Vec<u8> {
    let tokens = tokenize(data, effort);

    // Histogram both alphabets (EOB terminates the stream for the decoder).
    let mut litlen_freq = vec![0u64; LITLEN_ALPHABET];
    let mut dist_freq = vec![0u64; DIST_ALPHABET];
    for &t in &tokens {
        match t {
            Token::Literal(b) => litlen_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lsym, _, _) = length_code(len as usize);
                litlen_freq[(LEN_SYM_BASE + lsym) as usize] += 1;
                let (dsym, _, _) = dist_code(dist as usize);
                dist_freq[dsym as usize] += 1;
            }
        }
    }
    litlen_freq[EOB as usize] += 1;

    let lit_enc = HuffmanEncoder::from_frequencies(&litlen_freq);
    let dist_enc = HuffmanEncoder::from_frequencies(&dist_freq);

    let mut w = BitWriter::with_capacity(data.len() / 2 + 64);
    lit_enc.write_table(&mut w);
    dist_enc.write_table(&mut w);
    // Batched emission: each token's fragments (symbol codes + extra bits)
    // are merged into a 64-bit accumulator and drained through
    // `write_bits64` only when the next fragment would not fit — typically
    // one writer call per several tokens instead of 2-4 calls per match.
    // Byte-identical to symbol-at-a-time emission (flushing early only
    // splits where the accumulator drains, not what it holds).
    let mut emit = Emit::default();
    for &t in &tokens {
        match t {
            Token::Literal(b) => {
                let (c, l) = lit_enc.symbol_code(u32::from(b));
                emit.push(&mut w, c, l);
            }
            Token::Match { len, dist } => {
                let (lsym, lextra, lval) = length_code(len as usize);
                let (c, l) = lit_enc.symbol_code(LEN_SYM_BASE + lsym);
                emit.push(&mut w, c, l);
                emit.push(&mut w, lval, u32::from(lextra));
                let (dsym, dextra, dval) = dist_code(dist as usize);
                let (c, l) = dist_enc.symbol_code(dsym);
                emit.push(&mut w, c, l);
                emit.push(&mut w, dval, u32::from(dextra));
            }
        }
    }
    emit.flush(&mut w);
    lit_enc.encode_symbol(EOB, &mut w);
    let payload = w.finish();

    let mut w = HeaderWriter::with_capacity(payload.len().min(data.len()) + 14);
    w.magic(&ZLT1);
    w.u64(data.len() as u64);
    if payload.len() < data.len() {
        w.u8(MODE_LZ);
        w.raw(&payload);
    } else {
        w.u8(MODE_STORED);
        w.raw(data);
    }
    w.finish()
}

/// Code-fragment accumulator for batched entropy emission: fragments pile
/// into a u64 (every fragment is ≤ 32 bits, flushed before 57 live bits)
/// so the bit writer is called once per drain instead of once per fragment.
/// Zero-length fragments (absent extra bits) are free.
#[derive(Default)]
struct Emit {
    acc: u64,
    bits: u32,
}

impl Emit {
    #[inline]
    fn push(&mut self, w: &mut BitWriter, code: u32, len: u32) {
        if self.bits + len > 57 {
            w.write_bits64(self.acc, self.bits);
            self.acc = 0;
            self.bits = 0;
        }
        self.acc = (self.acc << len) | u64::from(code);
        self.bits += len;
    }

    #[inline]
    fn flush(self, w: &mut BitWriter) {
        if self.bits > 0 {
            w.write_bits64(self.acc, self.bits);
        }
    }
}

/// Decompresses a [`compress`] stream.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, Error> {
    let mut r = HeaderReader::new(data);
    r.expect_magic(&ZLT1)?;
    let raw_len = r.len64()?;
    let mode = r.u8()?;
    let body = r.rest();
    match mode {
        MODE_STORED => {
            if body.len() < raw_len {
                return Err(Error::Truncated);
            }
            Ok(body[..raw_len].to_vec())
        }
        MODE_LZ => {
            let mut r = BitReader::new(body);
            let lit_dec = HuffmanDecoder::read_table(&mut r).ok_or(Error::Truncated)?;
            let dist_dec = HuffmanDecoder::read_table(&mut r).ok_or(Error::Truncated)?;
            // Decode straight into the output buffer: literal runs arrive
            // packed (several bytes per Huffman-table lookup) and match
            // copies happen in place, replacing the intermediate token
            // vector and its second detokenize pass. `raw_len` is untrusted,
            // so the pre-allocation is capped and the buffer is checked
            // against it at every token boundary, bounding memory before a
            // lying header can force growth.
            let mut out: Vec<u8> = Vec::with_capacity(raw_len.min(1 << 20));
            loop {
                let sym = lit_dec
                    .decode_literal_run(&mut r, EOB, &mut out)
                    .ok_or(Error::Truncated)?;
                if out.len() > raw_len {
                    return Err(Error::Corrupt("length mismatch"));
                }
                if sym == EOB {
                    break;
                }
                let lsym = sym - LEN_SYM_BASE;
                if lsym as usize >= crate::codes::LENGTH_TABLE.len() {
                    return Err(Error::Corrupt("length symbol out of range"));
                }
                let (lbase, lextra) = length_decode(lsym);
                let lval = if lextra > 0 {
                    r.read_bits(u32::from(lextra)).ok_or(Error::Truncated)?
                } else {
                    0
                };
                let dsym = dist_dec.decode_symbol(&mut r).ok_or(Error::Truncated)?;
                if dsym as usize >= DIST_ALPHABET {
                    return Err(Error::Corrupt("distance symbol out of range"));
                }
                let (dbase, dextra) = dist_decode(dsym);
                let dval = if dextra > 0 {
                    r.read_bits(u32::from(dextra)).ok_or(Error::Truncated)?
                } else {
                    0
                };
                let len = lbase + lval as usize;
                let dist = dbase + dval as usize;
                if dist == 0 || dist > out.len() {
                    return Err(Error::Corrupt("bad back-reference"));
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Disjoint source: one memcpy-class copy.
                    out.extend_from_within(start..start + len);
                } else if dist == 1 {
                    // Run-length: repeat the last byte.
                    let b = out[start];
                    out.resize(out.len() + len, b);
                } else {
                    // Overlapping copy is the semantics (period-`dist` fill).
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
                if out.len() > raw_len {
                    return Err(Error::Corrupt("length mismatch"));
                }
            }
            if out.len() != raw_len {
                return Err(Error::Corrupt("length mismatch"));
            }
            Ok(out)
        }
        _ => Err(Error::Corrupt("unknown mode")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c).expect("decompress"), data);
        c.len()
    }

    #[test]
    fn empty() {
        roundtrip(b"");
    }

    #[test]
    fn short_strings() {
        roundtrip(b"a");
        roundtrip(b"hello");
        roundtrip(b"hello hello hello hello");
    }

    #[test]
    fn compresses_redundant_data() {
        let data: Vec<u8> = b"climate data climate data climate data "
            .iter()
            .cycle()
            .take(40_000)
            .copied()
            .collect();
        let n = roundtrip(&data);
        assert!(n < data.len() / 10, "only shrank to {n} of {}", data.len());
    }

    #[test]
    fn stored_mode_for_noise() {
        let mut state = 99u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (state >> 56) as u8
            })
            .collect();
        let n = roundtrip(&data);
        // Either stored (len + 14) or marginally compressed; never blown up.
        assert!(n <= data.len() + 14);
    }

    #[test]
    fn zeros_compress_extremely() {
        let data = vec![0u8; 100_000];
        let n = roundtrip(&data);
        assert!(n < 400, "zero run compressed to {n}");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut c = compress(b"payload");
        c[0] ^= 0xFF;
        assert_eq!(decompress(&c), Err(Error::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut c = compress(b"payload");
        c[4] = 0xEE;
        assert_eq!(decompress(&c), Err(Error::UnsupportedVersion(0xEE)));
    }

    #[test]
    fn truncation_detected() {
        let c = compress(b"some reasonably long payload with repetition repetition");
        for cut in [5, 12, 14, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn structured_floats_shrink() {
        // Byte stream resembling a Huffman-coded bin sequence: long runs with
        // sparse punctuation.
        let mut data = Vec::new();
        for i in 0..5_000u32 {
            data.extend_from_slice(&[0, 0, 0, (i % 17) as u8]);
        }
        let n = roundtrip(&data);
        assert!(n < data.len() / 3);
    }
}
