//! Frozen pre-rewrite reference of the zlite container, routed end-to-end
//! through the byte-at-a-time entropy reference kernels.
//!
//! [`ref_compress_with`] and [`ref_decompress`] are verbatim copies of the
//! pre-rewrite [`crate::compress`]/[`crate::decompress`]: the encoder runs
//! the byte-at-a-time tokenizer ([`ref_tokenize`]) and writes through
//! [`RefBitWriter`], and the decoder materializes a `Vec<Token>` before
//! replaying it with the byte-wise [`ref_detokenize`] — exactly the
//! behaviours the word-at-a-time/batched rewrites replace. Differential
//! tests assert byte-identical compressed streams and identical decode
//! results; `stage_bench` uses this pair as the same-host pre-rewrite
//! baseline. Do not optimize this module.

use crate::codes::{
    dist_code, dist_decode, length_code, length_decode, DIST_ALPHABET, EOB, LEN_SYM_BASE,
    LITLEN_ALPHABET, MAX_MATCH, MIN_MATCH, WINDOW,
};
use crate::format::Error;
use crate::lz::{Effort, Token};
use cliz_entropy::reference::{
    ref_encode_symbol, ref_write_table, RefBitReader, RefBitWriter, RefHuffmanDecoder,
};
use cliz_entropy::HuffmanEncoder;
use cliz_format::spec::ZLT1;

// The kernels are frozen, not the container prefix: the header must stay
// byte-identical with the live `crate::format` path (the differential
// suites compare whole streams), so the magic/version pair tracks the
// registry and the mode bytes are shared with the live module.
use crate::format::{MODE_LZ, MODE_STORED};

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

// xtask-allow-fn: R1, R5 -- frozen pre-rewrite copy of the encoder-side hash; every call site guarantees i+2 < data.len()
#[inline]
fn ref_hash3(data: &[u8], i: usize) -> usize {
    // Multiplicative hash of a 3-byte little-endian load.
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Frozen pre-rewrite [`crate::lz::tokenize`]: byte-wise match extension,
/// one-byte quick reject, per-position scalar chain insertion over
/// `usize`-wide head/prev tables. The live tokenizer must reproduce this
/// token stream exactly at every effort level; the differential and
/// adversarial suites enforce it.
// xtask-allow-fn: R1, R5 -- frozen pre-rewrite match finder over caller data; indices are bounded by the scan invariants (cand < i, best_len < max_len <= n - i), not by untrusted input
pub fn ref_tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h; prev[i & (WINDOW-1)] = the
    // previous position in i's chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];

    let insert = |head: &mut [usize], prev: &mut [usize], data: &[u8], i: usize| {
        let h = ref_hash3(data, i);
        prev[i & (WINDOW - 1)] = head[h];
        head[h] = i;
    };

    let find_best = |head: &[usize], prev: &[usize], data: &[u8], i: usize| -> (usize, usize) {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let max_len = MAX_MATCH.min(n - i);
        if max_len < MIN_MATCH {
            return (0, 0);
        }
        let mut cand = head[ref_hash3(data, i)];
        let mut chains = effort.max_chain;
        while cand != usize::MAX && chains > 0 {
            let dist = i - cand;
            if dist > WINDOW {
                break;
            }
            if best_len == max_len {
                break;
            }
            // Quick reject: check the byte where we must improve (in-bounds
            // because best_len < max_len <= n - i, and cand < i).
            if best_len == 0 || data[cand + best_len] == data[i + best_len] {
                let mut l = 0usize;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= effort.good_enough {
                        break;
                    }
                }
            }
            cand = prev[cand & (WINDOW - 1)];
            chains -= 1;
        }
        (best_len, best_dist)
    };

    let mut i = 0usize;
    while i < n {
        if i + MIN_MATCH > n {
            tokens.push(Token::Literal(data[i]));
            i += 1;
            continue;
        }
        let (len, dist) = find_best(&head, &prev, data, i);
        if len >= MIN_MATCH {
            // Lazy heuristic: literal + longer match at i+1 beats match at i.
            let take_match = if i + 1 + MIN_MATCH <= n && len < effort.good_enough {
                insert(&mut head, &mut prev, data, i);
                let (len2, _) = find_best(&head, &prev, data, i + 1);
                if len2 > len {
                    tokens.push(Token::Literal(data[i]));
                    i += 1;
                    false
                } else {
                    true
                }
            } else {
                insert(&mut head, &mut prev, data, i);
                true
            };
            if take_match {
                tokens.push(Token::Match {
                    len: len as u32,
                    dist: dist as u32,
                });
                // Index the covered positions (skip some on long matches to
                // bound cost; deflate does the same above `good_enough`).
                let end = (i + len).min(n - MIN_MATCH);
                let step = if len > 64 { 4 } else { 1 };
                let mut j = i + 1;
                while j < end {
                    insert(&mut head, &mut prev, data, j);
                    j += step;
                }
                i += len;
            }
        } else {
            insert(&mut head, &mut prev, data, i);
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Frozen pre-rewrite [`crate::lz::detokenize`]: every match copy is
/// byte-wise, including the non-overlapping `dist >= len` case the live
/// replayer now serves with `extend_from_within`.
pub fn ref_detokenize(tokens: &[Token], expected_len: usize) -> Option<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                // Overlapping copies are the point (run-length encoding via
                // dist < len), so copy byte-wise.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

/// Pre-rewrite [`crate::compress`] (default effort).
pub fn ref_compress(data: &[u8]) -> Vec<u8> {
    ref_compress_with(data, Effort::default())
}

/// Pre-rewrite [`crate::compress_with`]: identical tokenization and codebook
/// construction, bit stream assembled by the byte-at-a-time writer.
pub fn ref_compress_with(data: &[u8], effort: Effort) -> Vec<u8> {
    let tokens = ref_tokenize(data, effort);

    let mut litlen_freq = vec![0u64; LITLEN_ALPHABET];
    let mut dist_freq = vec![0u64; DIST_ALPHABET];
    for &t in &tokens {
        match t {
            Token::Literal(b) => litlen_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lsym, _, _) = length_code(len as usize);
                litlen_freq[(LEN_SYM_BASE + lsym) as usize] += 1;
                let (dsym, _, _) = dist_code(dist as usize);
                dist_freq[dsym as usize] += 1;
            }
        }
    }
    litlen_freq[EOB as usize] += 1;

    let lit_enc = HuffmanEncoder::from_frequencies(&litlen_freq);
    let dist_enc = HuffmanEncoder::from_frequencies(&dist_freq);

    let mut w = RefBitWriter::new();
    ref_write_table(&lit_enc, &mut w);
    ref_write_table(&dist_enc, &mut w);
    for &t in &tokens {
        match t {
            Token::Literal(b) => ref_encode_symbol(&lit_enc, u32::from(b), &mut w),
            Token::Match { len, dist } => {
                let (lsym, lextra, lval) = length_code(len as usize);
                ref_encode_symbol(&lit_enc, LEN_SYM_BASE + lsym, &mut w);
                if lextra > 0 {
                    w.write_bits(lval, u32::from(lextra));
                }
                let (dsym, dextra, dval) = dist_code(dist as usize);
                ref_encode_symbol(&dist_enc, dsym, &mut w);
                if dextra > 0 {
                    w.write_bits(dval, u32::from(dextra));
                }
            }
        }
    }
    ref_encode_symbol(&lit_enc, EOB, &mut w);
    let payload = w.finish();

    let mut out = Vec::with_capacity(payload.len().min(data.len()) + 14);
    out.extend_from_slice(&ZLT1.magic.to_le_bytes());
    out.push(ZLT1.version);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    if payload.len() < data.len() {
        out.push(MODE_LZ);
        out.extend_from_slice(&payload);
    } else {
        out.push(MODE_STORED);
        out.extend_from_slice(data);
    }
    out
}

/// Pre-rewrite [`crate::decompress`]: per-symbol decode into an intermediate
/// `Vec<Token>`, then a second detokenize pass.
pub fn ref_decompress(data: &[u8]) -> Result<Vec<u8>, Error> {
    let header = |range: std::ops::Range<usize>| data.get(range).ok_or(Error::Truncated);
    let magic = u32::from_le_bytes(header(0..4)?.try_into().map_err(|_| Error::Truncated)?);
    if magic != ZLT1.magic {
        return Err(Error::BadMagic);
    }
    let version = *data.get(4).ok_or(Error::Truncated)?;
    if version == 0 || version > ZLT1.version {
        return Err(Error::UnsupportedVersion(version));
    }
    let raw_len = u64::from_le_bytes(header(5..13)?.try_into().map_err(|_| Error::Truncated)?)
        as usize;
    let mode = *data.get(13).ok_or(Error::Truncated)?;
    let body = data.get(14..).ok_or(Error::Truncated)?;
    match mode {
        MODE_STORED => {
            if body.len() < raw_len {
                return Err(Error::Truncated);
            }
            Ok(body[..raw_len].to_vec())
        }
        MODE_LZ => {
            let mut r = RefBitReader::new(body);
            let lit_dec = RefHuffmanDecoder::read_table(&mut r).ok_or(Error::Truncated)?;
            let dist_dec = RefHuffmanDecoder::read_table(&mut r).ok_or(Error::Truncated)?;
            // xtask-allow: R11 -- frozen pre-rewrite reference: the
            // intermediate token vector is the allocation pattern the batched
            // rewrite removes; the differential oracle pins its behaviour.
            let mut tokens: Vec<Token> = Vec::with_capacity(raw_len / 4);
            loop {
                let sym = lit_dec.decode_symbol(&mut r).ok_or(Error::Truncated)?;
                if sym == EOB {
                    break;
                }
                if sym < EOB {
                    tokens.push(Token::Literal(sym as u8));
                    continue;
                }
                let lsym = sym - LEN_SYM_BASE;
                if lsym as usize >= crate::codes::LENGTH_TABLE.len() {
                    return Err(Error::Corrupt("length symbol out of range"));
                }
                let (lbase, lextra) = length_decode(lsym);
                let lval = if lextra > 0 {
                    r.read_bits(u32::from(lextra)).ok_or(Error::Truncated)?
                } else {
                    0
                };
                let dsym = dist_dec.decode_symbol(&mut r).ok_or(Error::Truncated)?;
                if dsym as usize >= DIST_ALPHABET {
                    return Err(Error::Corrupt("distance symbol out of range"));
                }
                let (dbase, dextra) = dist_decode(dsym);
                let dval = if dextra > 0 {
                    r.read_bits(u32::from(dextra)).ok_or(Error::Truncated)?
                } else {
                    0
                };
                tokens.push(Token::Match {
                    len: (lbase + lval as usize) as u32,
                    dist: (dbase + dval as usize) as u32,
                });
            }
            let out =
                ref_detokenize(&tokens, raw_len).ok_or(Error::Corrupt("bad back-reference"))?;
            if out.len() != raw_len {
                return Err(Error::Corrupt("length mismatch"));
            }
            Ok(out)
        }
        _ => Err(Error::Corrupt("unknown mode")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_pair_roundtrips() {
        let data: Vec<u8> = b"climate data climate data climate data "
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect();
        let c = ref_compress(&data);
        assert_eq!(ref_decompress(&c).expect("ref decompress"), data);
    }
}
