//! Differential tests pinning the rewritten zlite kernels against the
//! frozen pre-rewrite references in `cliz_lossless::reference`.
//!
//! The batched literal-run decode and the rewritten match copy are
//! throughput rewrites of a frozen container format: compressed bytes must
//! stay byte-identical and both decoders must accept both encoders'
//! output. Payload shapes cover what the codec actually feeds zlite
//! (entropy-coded residual bytes) plus the adversarial LZ edges: overlap
//! copies, long runs, incompressible noise, and ragged tails.

use cliz_lossless::reference::{ref_compress, ref_compress_with, ref_decompress};
use cliz_lossless::{compress, decompress};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

/// Run-heavy bytes with sparse punctuation — the shape Huffman-coded
/// residual payloads actually take.
fn runs(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = Lcg(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let r = rng.next();
        let run = 3 + (r >> 48) as usize % 32;
        let byte = ((r >> 32) & 0x7) as u8;
        for _ in 0..run.min(n - out.len()) {
            out.push(byte);
        }
        if out.len() < n {
            out.push((r >> 56) as u8);
        }
    }
    out
}

/// Incompressible noise: the stored/literal-heavy path.
fn noise(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = Lcg(seed);
    (0..n).map(|_| (rng.next() >> 32) as u8).collect()
}

/// Short repeating period `p` — forces matches with `dist < len`
/// (self-overlapping copies), the classic LZ decode edge.
fn periodic(p: usize, n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % p) as u8).collect()
}

/// Asserts the 4-way identity square for one payload.
fn assert_payload_identity(payload: &[u8]) {
    let new_bytes = compress(payload);
    let ref_bytes = ref_compress(payload);
    assert_eq!(
        new_bytes, ref_bytes,
        "compressed bytes diverge ({} bytes in)",
        payload.len()
    );
    assert_eq!(decompress(&new_bytes).as_deref(), Ok(payload));
    assert_eq!(ref_decompress(&new_bytes).as_deref(), Ok(payload));
    assert_eq!(decompress(&ref_bytes).as_deref(), Ok(payload));
}

#[test]
fn zlite_is_byte_identical_across_seeded_sweep() {
    for seed in 1..=6u64 {
        assert_payload_identity(&runs(seed, 50_000));
        assert_payload_identity(&noise(seed, 20_000));
    }
}

#[test]
fn zlite_handles_degenerate_payloads() {
    assert_payload_identity(&[]);
    assert_payload_identity(&[0]);
    assert_payload_identity(&[255]);
    assert_payload_identity(&vec![9u8; 100_000]); // one giant run
    for n in 0..48usize {
        assert_payload_identity(&runs(7, n)); // ragged tails
    }
}

#[test]
fn zlite_overlap_copies_match_reference() {
    for p in [1usize, 2, 3, 4, 5, 7, 8, 13, 16, 255] {
        assert_payload_identity(&periodic(p, 10_000));
    }
    // Period changes mid-stream: matches must re-anchor.
    let mut mixed = periodic(3, 5_000);
    mixed.extend(periodic(7, 5_000));
    mixed.extend(noise(11, 1_000));
    mixed.extend(periodic(3, 5_000)); // far back-reference to the opening
    assert_payload_identity(&mixed);
}

#[test]
fn zlite_effort_levels_stay_byte_identical() {
    use cliz_lossless::lz::Effort;
    let payload = runs(42, 30_000);
    for (max_chain, good_enough) in [(1usize, 4usize), (8, 16), (64, 96), (1024, 258)] {
        let effort = Effort {
            max_chain,
            good_enough,
        };
        let new_bytes = cliz_lossless::format::compress_with(&payload, effort);
        let ref_bytes = ref_compress_with(&payload, effort);
        assert_eq!(new_bytes, ref_bytes, "effort {max_chain}/{good_enough}");
        assert_eq!(decompress(&new_bytes).as_deref(), Ok(&payload[..]));
    }
}

/// Mirror of the encoder's `hash3` (multiplicative hash of a 3-byte LE
/// load, folded to `HASH_BITS = 15`). Used to *construct* colliding
/// triples rather than hope a random stream finds them.
fn hash3(b0: u8, b1: u8, b2: u8) -> u32 {
    let v = u32::from(b0) | u32::from(b1) << 8 | u32::from(b2) << 16;
    v.wrapping_mul(0x9E37_79B1) >> 17
}

#[test]
fn zlite_hash_collision_floods_match_reference() {
    // Gather >64 distinct 3-byte triples that land in one hash bucket —
    // more than the bucket ring's SLOTS capacity — so the tokenizer's
    // chain walk is flooded with colliding-but-unequal candidates and the
    // ring wraps. Token choices under eviction must still match the
    // frozen reference exactly.
    let target = hash3(1, 2, 3);
    let mut triples: Vec<[u8; 3]> = Vec::new();
    'scan: for b0 in 0..=255u8 {
        for b1 in 0..=255u8 {
            for b2 in 0..=255u8 {
                if hash3(b0, b1, b2) == target {
                    triples.push([b0, b1, b2]);
                    if triples.len() >= 96 {
                        break 'scan;
                    }
                }
            }
        }
    }
    assert!(triples.len() >= 96, "bucket too sparse: {}", triples.len());

    // One pass of every colliding triple (all-miss chain walks), then a
    // shuffled second pass so far-back real matches hide behind dozens of
    // colliding impostors in the same bucket.
    let mut payload = Vec::new();
    for t in &triples {
        payload.extend_from_slice(t);
    }
    let mut rng = Lcg(0xC0111D);
    let mut order: Vec<usize> = (0..triples.len()).collect();
    for i in (1..order.len()).rev() {
        let j = (rng.next() >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    for &i in &order {
        payload.extend_from_slice(&triples[i]);
    }
    // Repeat to push every bucket ring past wrap-around several times.
    let once = payload.clone();
    for _ in 0..8 {
        payload.extend_from_slice(&once);
    }
    assert_payload_identity(&payload);
}

#[test]
fn zlite_all_zero_payload_matches_reference() {
    for n in [1usize, 2, 3, 4, 257, 4_096, 100_000] {
        assert_payload_identity(&vec![0u8; n]);
    }
}

#[test]
fn zlite_effort_fast_roundtrips_with_bounded_ratio() {
    use cliz_lossless::lz::Effort;
    // `Effort::fast` is the one profile NOT pinned to the reference token
    // stream: its contract is (a) lossless roundtrip through both
    // decoders and (b) a bounded ratio give-up vs the pinned default.
    // stage_bench enforces the same 1.2x bound as a speed gate.
    for payload in [
        runs(21, 60_000),
        noise(22, 30_000),
        periodic(3, 30_000),
        vec![0u8; 50_000],
    ] {
        let fast = cliz_lossless::compress_with(&payload, Effort::fast());
        assert_eq!(decompress(&fast).as_deref(), Ok(&payload[..]));
        assert_eq!(ref_decompress(&fast).as_deref(), Ok(&payload[..]));
        let pinned = compress(&payload);
        assert!(
            fast.len() <= pinned.len().saturating_mul(12) / 10,
            "fast ratio give-up too large: {} vs {} pinned",
            fast.len(),
            pinned.len()
        );
    }
}

#[test]
fn zlite_rejects_truncation_like_reference() {
    let payload = runs(5, 20_000);
    let bytes = compress(&payload);
    for cut in [0, 1, 2, 5, bytes.len() / 2, bytes.len() - 1] {
        let new_r = decompress(&bytes[..cut]);
        let ref_r = ref_decompress(&bytes[..cut]);
        assert_eq!(new_r.is_err(), ref_r.is_err(), "cut {cut}");
        if let (Ok(a), Ok(b)) = (&new_r, &ref_r) {
            assert_eq!(a, b, "cut {cut}");
        }
    }
}
