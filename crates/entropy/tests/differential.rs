//! Differential tests pinning the rewritten entropy kernels against the
//! frozen pre-rewrite references in `cliz_entropy::reference`.
//!
//! The word-at-a-time `BitWriter`/`BitReader` and the packed multi-symbol
//! Huffman decoder are *rewrites*, not re-specifications: they must produce
//! bit-identical streams and decode bit-identical symbols. Every case here
//! checks all four directions (new→new, ref→ref, new→ref, ref→new) so a
//! compensating pair of bugs can't hide.

use cliz_entropy::huffman::{decode_stream, encode_stream};
use cliz_entropy::reference::{
    ref_decode_stream, ref_encode_stream, RefBitReader, RefBitWriter,
};
use cliz_entropy::{BitReader, BitWriter};

/// Deterministic 64-bit LCG (same constants as the bench harness).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        (self.next() >> 16) % n
    }
}

/// Geometric-ish symbol stream like the quantization bins the codec emits.
fn geometric(seed: u64, n: usize) -> Vec<u32> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let r = (rng.next() >> 40) as u32 | 1;
            (r.leading_zeros() - 8).min(48)
        })
        .collect()
}

/// Uniform draw over a configurable alphabet: flat trees, long codes.
fn uniform(seed: u64, n: usize, alphabet: u64) -> Vec<u32> {
    let mut rng = Lcg(seed);
    (0..n).map(|_| rng.below(alphabet) as u32).collect()
}

/// Asserts the full 4-way identity square for one symbol stream.
fn assert_stream_identity(symbols: &[u32]) {
    let new_bytes = encode_stream(symbols);
    let ref_bytes = ref_encode_stream(symbols);
    assert_eq!(new_bytes, ref_bytes, "encoded bytes diverge ({} syms)", symbols.len());
    assert_eq!(decode_stream(&new_bytes).as_deref(), Some(symbols));
    assert_eq!(ref_decode_stream(&new_bytes).as_deref(), Some(symbols));
    assert_eq!(decode_stream(&ref_bytes).as_deref(), Some(symbols));
}

#[test]
fn huffman_streams_are_byte_identical_across_seeded_sweep() {
    for seed in 1..=8u64 {
        assert_stream_identity(&geometric(seed, 4096));
        assert_stream_identity(&uniform(seed, 2048, 500));
        // Tiny alphabet: 1-bit codes, maximal multi-symbol packing.
        assert_stream_identity(&uniform(seed, 2048, 2));
    }
}

#[test]
fn huffman_streams_handle_degenerate_shapes() {
    // Empty stream, single symbol, single repeated symbol (zero-bit codes).
    assert_stream_identity(&[]);
    assert_stream_identity(&[7]);
    assert_stream_identity(&vec![42u32; 1000]);
    // Every length from 0..64: exercises tails shorter than one pack entry.
    for n in 0..64usize {
        assert_stream_identity(&geometric(99, n));
    }
}

#[test]
fn huffman_deep_tree_exercises_past_the_lut() {
    // Geometric counts force code lengths past the 11-bit LUT: symbol k
    // appears ~2^(26-k) times, driving ~k-bit codes up to depth ~26.
    let mut symbols = Vec::new();
    for k in 0..26u32 {
        let reps = 1usize << (26 - k).min(12);
        symbols.extend(std::iter::repeat(k).take(reps));
    }
    for k in 26..40u32 {
        symbols.push(k); // singletons: the deepest codes
    }
    // Deterministic shuffle so deep codes land mid-stream, not just at ends.
    let mut rng = Lcg(0xDEAD_BEEF);
    for i in (1..symbols.len()).rev() {
        symbols.swap(i, rng.below(i as u64 + 1) as usize);
    }
    assert_stream_identity(&symbols);
}

#[test]
fn bit_writers_agree_on_mixed_width_sequences() {
    for seed in 1..=8u64 {
        let mut rng = Lcg(seed);
        let mut new_w = BitWriter::new();
        let mut ref_w = RefBitWriter::new();
        for _ in 0..2000 {
            let len = 1 + rng.below(32) as u32;
            let code = (rng.next() as u32) & (((1u64 << len) - 1) as u32);
            new_w.write_bits(code, len);
            ref_w.write_bits(code, len);
        }
        assert_eq!(new_w.bit_len(), ref_w.bit_len());
        assert_eq!(new_w.finish(), ref_w.finish(), "seed {seed}");
    }
}

#[test]
fn bit_readers_agree_in_lockstep_including_tail_bits() {
    for seed in 1..=8u64 {
        // A stream ending mid-byte: total bits ≢ 0 (mod 8).
        let mut rng = Lcg(seed);
        let mut w = RefBitWriter::new();
        let mut script = Vec::new();
        for _ in 0..500 {
            let len = 1 + rng.below(32) as u32;
            let code = (rng.next() as u32) & (((1u64 << len) - 1) as u32);
            w.write_bits(code, len);
            script.push(len);
        }
        w.write_bits(1, 3); // force a ragged tail
        script.push(3);
        let bytes = w.finish();

        let mut new_r = BitReader::new(&bytes);
        let mut ref_r = RefBitReader::new(&bytes);
        for (i, &len) in script.iter().enumerate() {
            // The reference peek is contracted to ≤ 16 bits (the rewrite
            // widened it to 32); compare only the shared range.
            let peek_len = len.min(16);
            assert_eq!(
                new_r.peek_bits(peek_len),
                ref_r.peek_bits(peek_len),
                "peek {i} (seed {seed})"
            );
            assert_eq!(
                new_r.read_bits(len),
                ref_r.read_bits(len),
                "read {i} (seed {seed})"
            );
            assert_eq!(new_r.bit_pos(), ref_r.bit_pos(), "pos {i} (seed {seed})");
        }
        // Whatever finish() padded must read as zero bits for both, and
        // over-reading past the final byte must fail for both.
        let left = bytes.len() * 8 - new_r.bit_pos();
        if left > 0 {
            let left32 = u32::try_from(left).expect("tail fits in u32");
            assert_eq!(new_r.read_bits(left32), ref_r.read_bits(left32));
        }
        assert_eq!(new_r.read_bits(1), None);
        assert_eq!(ref_r.read_bits(1), None);
    }
}

#[test]
fn bit_reader_edge_cases_match_reference() {
    // Empty stream: every read fails, peek zero-pads.
    let empty: &[u8] = &[];
    let mut new_r = BitReader::new(empty);
    let mut ref_r = RefBitReader::new(empty);
    assert_eq!(new_r.peek_bits(11), ref_r.peek_bits(11));
    assert_eq!(new_r.read_bits(1), None);
    assert_eq!(ref_r.read_bits(1), None);

    // Both fail a 9-bit read on a 1-byte stream. (Post-failure state is
    // *not* compared: the reference consumes partially on a failed read,
    // while the rewrite is all-or-nothing — a deliberate strengthening.
    // No decode path reads again after a failure, so only the None
    // outcome is contracted.)
    let one = [0b1010_1101u8];
    let mut new_r = BitReader::new(&one);
    let mut ref_r = RefBitReader::new(&one);
    assert_eq!(new_r.read_bits(9), None);
    assert_eq!(ref_r.read_bits(9), None);
    // The rewrite still has the full byte available afterwards.
    assert_eq!(new_r.read_bits(8), Some(0b1010_1101));
}

#[test]
fn decoder_rejects_truncated_and_oversized_counts_like_reference() {
    let symbols = geometric(3, 2000);
    let bytes = encode_stream(&symbols);
    // Truncation anywhere must fail (or, for payload-tail truncation that
    // still leaves n symbols decodable, agree) in both decoders.
    for cut in [0, 1, 3, 4, 7, bytes.len() / 2, bytes.len() - 1] {
        assert_eq!(
            decode_stream(&bytes[..cut]),
            ref_decode_stream(&bytes[..cut]),
            "cut {cut}"
        );
    }
    // A count header promising more symbols than the payload can hold.
    let mut lying = bytes.clone();
    lying[..4].copy_from_slice(&[0xFF; 4]);
    assert_eq!(decode_stream(&lying), None);
    assert_eq!(ref_decode_stream(&lying), None);
}
