//! Entropy coding for CliZ: bit-level I/O, canonical Huffman, and the
//! paper's multi-Huffman group coder (Sec. VI-E).
//!
//! SZ3-family compressors Huffman-encode the quantization-bin stream before
//! handing it to a byte-level lossless backend. CliZ extends this with
//! *quantization-bin classification*: bins are partitioned into groups by
//! horizontal position (shifting/dispersion patterns), and each group gets
//! its own Huffman tree — clustering similar bin distributions sharpens each
//! tree's histogram and shortens the expected code length.
//!
//! Everything here is self-contained (no std `HashMap` in hot paths, MSB-first
//! bit order, canonical codes) so encode and decode are bit-exact across
//! platforms.

pub mod bitio;
pub mod huffman;
pub mod multi;
pub mod range;

pub use bitio::{BitReader, BitWriter};
pub use huffman::{HuffmanDecoder, HuffmanEncoder};
pub use multi::{multi_decode, multi_encode};
pub use range::{range_decode_stream, range_encode_stream};
