//! Entropy coding for CliZ: bit-level I/O, canonical Huffman, and the
//! paper's multi-Huffman group coder (Sec. VI-E).
//!
//! SZ3-family compressors Huffman-encode the quantization-bin stream before
//! handing it to a byte-level lossless backend. CliZ extends this with
//! *quantization-bin classification*: bins are partitioned into groups by
//! horizontal position (shifting/dispersion patterns), and each group gets
//! its own Huffman tree — clustering similar bin distributions sharpens each
//! tree's histogram and shortens the expected code length.
//!
//! Everything here is self-contained (no std `HashMap` in hot paths, MSB-first
//! bit order, canonical codes) so encode and decode are bit-exact across
//! platforms.

// Decode paths must never panic on untrusted input (see docs/STATIC_ANALYSIS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bitio;
pub mod huffman;
pub mod multi;
pub mod range;
pub mod reference;

/// Decode-side cap on symbol-alphabet sizes read from untrusted headers.
/// Honest streams in this workspace stay at or below `2·radius + 2 ≈ 2^16`;
/// the cap keeps a corrupt header from forcing a multi-GiB table allocation
/// before any payload byte is validated.
pub(crate) const MAX_DECODE_ALPHABET: usize = 1 << 24;

pub use bitio::{BitReader, BitWriter};
pub use huffman::{HuffmanDecoder, HuffmanEncoder};
pub use multi::{multi_decode, multi_encode};
pub use range::{range_decode_stream, range_encode_stream};
