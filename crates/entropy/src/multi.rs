//! Multi-Huffman group coding (Sec. VI-E).
//!
//! The quantization-bin classifier assigns every symbol a *group* (the paper
//! uses two: high-peak positions vs dispersed positions). Each group gets its
//! own Huffman tree; symbols are encoded in stream order with their group's
//! tree. The group assignment itself is **not** stored here — the classifier
//! persists its per-horizontal-position map separately (it is shared across
//! heights/timesteps, Sec. VII-C3), and the decoder replays the same
//! assignment, so encode and decode stay in lockstep.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{HuffmanDecoder, HuffmanEncoder};
use cliz_grid::cast;

/// Encodes `symbols` where `groups[i]` selects the Huffman tree for
/// `symbols[i]`. `n_groups` trees are built (empty groups cost ~8 bytes of
/// table header each).
///
/// # Panics
/// Panics when `symbols` and `groups` lengths differ or a group id is out of
/// range.
pub fn multi_encode(symbols: &[u32], groups: &[u8], n_groups: usize) -> Vec<u8> {
    assert_eq!(symbols.len(), groups.len(), "symbols/groups length mismatch");
    assert!(n_groups >= 1);

    // Per-group histograms.
    let alphabet = symbols.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut freqs = vec![vec![0u64; alphabet]; n_groups];
    for (&s, &g) in symbols.iter().zip(groups) {
        assert!((g as usize) < n_groups, "group id {g} out of range");
        freqs[g as usize][s as usize] += 1;
    }

    let encoders: Vec<HuffmanEncoder> = freqs
        .iter()
        .map(|f| HuffmanEncoder::from_frequencies(f))
        .collect();

    let mut w = BitWriter::new();
    w.write_u32(cast::u32_len(symbols.len()));
    w.write_u32(cast::u32_len(n_groups));
    for enc in &encoders {
        enc.write_table(&mut w);
    }
    for (&s, &g) in symbols.iter().zip(groups) {
        encoders[g as usize].encode_symbol(s, &mut w);
    }
    w.finish()
}

/// Decodes a [`multi_encode`] stream. The caller must supply the same `groups`
/// sequence used at encode time (regenerated from the classification map).
pub fn multi_decode(bytes: &[u8], groups: &[u8]) -> Option<Vec<u32>> {
    let mut r = BitReader::new(bytes);
    let n = r.read_u32()? as usize;
    if n != groups.len() {
        return None;
    }
    let n_groups = r.read_u32()? as usize;
    // Group ids are u8, so an honest stream never has more than 256 tables.
    if n_groups > 256 {
        return None;
    }
    let mut decoders = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        decoders.push(HuffmanDecoder::read_table(&mut r)?);
    }
    let mut out = Vec::with_capacity(n);
    for &g in groups {
        let dec = decoders.get(g as usize)?;
        out.push(dec.decode_symbol(&mut r)?);
    }
    Some(out)
}

/// Estimated payload bits if `symbols` were encoded as `n_groups` separate
/// Huffman streams (excludes table overhead). The auto-tuner uses the delta
/// against the single-tree estimate to decide whether classification pays.
pub fn multi_payload_bits(symbols: &[u32], groups: &[u8], n_groups: usize) -> u64 {
    assert_eq!(symbols.len(), groups.len());
    let alphabet = symbols.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut freqs = vec![vec![0u64; alphabet]; n_groups];
    for (&s, &g) in symbols.iter().zip(groups) {
        freqs[g as usize][s as usize] += 1;
    }
    freqs
        .iter()
        .map(|f| HuffmanEncoder::from_frequencies(f).encoded_bits(f))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huffman::encode_stream;

    #[test]
    fn roundtrip_two_groups() {
        let symbols: Vec<u32> = (0..1000u32).map(|i| i % 7).collect();
        let groups: Vec<u8> = (0..1000).map(|i| (i % 3 == 0) as u8).collect();
        let bytes = multi_encode(&symbols, &groups, 2);
        assert_eq!(multi_decode(&bytes, &groups), Some(symbols));
    }

    #[test]
    fn roundtrip_single_group_degenerates_to_huffman() {
        let symbols: Vec<u32> = (0..500u32).map(|i| (i * 13) % 11).collect();
        let groups = vec![0u8; 500];
        let bytes = multi_encode(&symbols, &groups, 1);
        assert_eq!(multi_decode(&bytes, &groups), Some(symbols));
    }

    #[test]
    fn roundtrip_empty() {
        let bytes = multi_encode(&[], &[], 2);
        assert_eq!(multi_decode(&bytes, &[]), Some(vec![]));
    }

    #[test]
    fn empty_group_tolerated() {
        let symbols = vec![3u32, 3, 4];
        let groups = vec![1u8, 1, 1]; // group 0 never used
        let bytes = multi_encode(&symbols, &groups, 2);
        assert_eq!(multi_decode(&bytes, &groups), Some(symbols));
    }

    #[test]
    fn wrong_group_sequence_detected_or_differs() {
        // Distinct per-group histograms so the two trees differ: group 0 is
        // heavily skewed toward symbol 0, group 1 toward symbol 4.
        let symbols: Vec<u32> = (0..100u32)
            .map(|i| if i % 2 == 0 { if i % 10 == 0 { i % 5 } else { 0 } } else if i % 10 == 1 { i % 5 } else { 4 })
            .collect();
        let groups: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let bytes = multi_encode(&symbols, &groups, 2);
        let wrong = vec![0u8; 100];
        // Either decode fails or yields different symbols — it must not
        // silently return the original.
        match multi_decode(&bytes, &wrong) {
            None => {}
            Some(out) => assert_ne!(out, symbols),
        }
    }

    #[test]
    fn mismatched_length_rejected() {
        let bytes = multi_encode(&[1, 2, 3], &[0, 0, 0], 1);
        assert_eq!(multi_decode(&bytes, &[0, 0]), None);
    }

    /// The core claim of Sec. VI-E: when two populations with shifted
    /// histograms are mixed, two trees beat one.
    #[test]
    fn classification_improves_on_bimodal_mix() {
        let mut symbols = Vec::new();
        let mut groups = Vec::new();
        // Group 0 peaks at symbol 10, group 1 peaks at symbol 20.
        for i in 0..4000u32 {
            let (center, g) = if i % 2 == 0 { (10u32, 0u8) } else { (20u32, 1u8) };
            let jitter = [0u32, 0, 0, 0, 1, 2][(i % 6) as usize];
            symbols.push(center + jitter);
            groups.push(g);
        }
        let single = encode_stream(&symbols).len();
        let multi = multi_encode(&symbols, &groups, 2).len();
        assert!(
            multi < single,
            "multi-Huffman ({multi} B) should beat single tree ({single} B)"
        );
    }

    #[test]
    fn payload_estimate_matches_actual() {
        let symbols: Vec<u32> = (0..3000u32).map(|i| (i / 100) % 9).collect();
        let groups: Vec<u8> = (0..3000).map(|i| ((i / 500) % 2) as u8).collect();
        let est = multi_payload_bits(&symbols, &groups, 2);
        // Actual stream = header + 2 tables + payload; payload dominates and
        // the estimate must match it exactly, so actual_bits >= est and the
        // difference is the fixed overhead (< 2000 bits here).
        let actual_bits = (multi_encode(&symbols, &groups, 2).len() * 8) as u64;
        assert!(actual_bits >= est);
        assert!(actual_bits - est < 2000, "overhead {}", actual_bits - est);
    }
}
