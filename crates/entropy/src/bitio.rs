//! MSB-first bit-level writer and reader, word-at-a-time.
//!
//! MSB-first order lets canonical Huffman decoders compare accumulated code
//! values numerically against per-length first-code tables.
//!
//! Both sides buffer in a 64-bit accumulator so a `write_bits`/`read_bits`
//! call touches memory at most once per 8 bits instead of once per bit:
//! the writer drains whole bytes only when ≥ 8 bits are pending, and the
//! reader refills the accumulator to ≥ 56 bits before extracting, so any
//! `len ≤ 32` read is a single shift+mask. The byte streams are identical
//! to the pre-rewrite byte-at-a-time implementation (frozen in
//! [`crate::reference`] and pinned by differential tests).

use cliz_grid::cast;

/// Accumulates bits MSB-first into a byte vector.
///
/// The low `nbits` bits of `acc` are live (most recently written = least
/// significant); bits above them are stale and masked out on drain.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    /// Live bit count, kept in [0, 8) between calls.
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            out: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Writes the low `len` bits of `code`, most significant first.
    /// `len` must be ≤ 32.
    #[inline]
    pub fn write_bits(&mut self, code: u32, len: u32) {
        debug_assert!(len <= 32);
        debug_assert!(u64::from(code) < (1u64 << len) || len == 32);
        // At most 7 live bits + 32 new = 39, comfortably inside u64.
        self.acc = (self.acc << len) | u64::from(code);
        self.nbits += len;
        while self.nbits >= 8 {
            self.nbits -= 8;
            // Keeps exactly the 8 live bits below the stale region.
            self.out.push(cast::low_u8(self.acc >> self.nbits));
        }
    }

    /// Writes the low `len` bits of `code`, most significant first, in one
    /// accumulator pass. `len` must be ≤ 57 (7 live carry bits + 57 fit the
    /// u64 accumulator), which lets callers pre-merge several short codes
    /// and pay the drain once. Byte-identical to the same sequence of
    /// [`BitWriter::write_bits`] calls.
    // xtask-allow-fn: R1, R5 -- encoder-side drain of a local 8-byte array; drain <= 64 always, so drain/8 <= 8 stays inside `bytes`
    #[inline]
    pub fn write_bits64(&mut self, code: u64, len: u32) {
        debug_assert!(len <= 57);
        debug_assert!(code < (1u64 << len) || len >= 57);
        self.acc = (self.acc << len) | code;
        self.nbits += len;
        let drain = self.nbits & !7;
        if drain > 0 {
            self.nbits -= drain;
            // Whole live bytes, MSB-aligned, appended in one slice copy.
            let bytes = ((self.acc >> self.nbits) << (64 - drain)).to_be_bytes();
            self.out.extend_from_slice(&bytes[..(drain / 8) as usize]);
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u32::from(bit), 1);
    }

    /// Writes a full little-endian u32 (byte-aligned values; still packed at
    /// the current bit position).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bits(v, 32);
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Flushes (zero-padding the final byte) and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(cast::low_u8(self.acc << (8 - self.nbits)));
        }
        self.out
    }
}

/// Reads bits MSB-first from a byte slice.
///
/// The low `nbits` bits of `acc` are live; [`BitReader::refill`] tops the
/// accumulator up to ≥ 56 live bits (or end of data) so every extraction of
/// up to 32 bits is branch-light.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load into the accumulator.
    pos: usize,
    acc: u64,
    /// Live (loaded but unconsumed) bit count, ≤ 63.
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Tops the accumulator up to ≥ 56 live bits or end of data, one byte
    /// per pass (≤ 7 passes, amortized over multi-bit reads).
    #[inline]
    fn refill(&mut self) {
        while self.nbits < 56 {
            let Some(&b) = self.data.get(self.pos) else {
                return;
            };
            self.acc = (self.acc << 8) | u64::from(b);
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `len` bits MSB-first. Returns `None` when the stream holds
    /// fewer than `len` bits (nothing is consumed in that case).
    #[inline]
    pub fn read_bits(&mut self, len: u32) -> Option<u32> {
        debug_assert!(len <= 32);
        self.refill();
        if self.nbits < len {
            return None;
        }
        self.nbits -= len;
        Some(cast::low_u32((self.acc >> self.nbits) & ((1u64 << len) - 1)))
    }

    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b == 1)
    }

    /// Peeks `len ≤ 32` bits without consuming, zero-padding past the end of
    /// the stream. Used by table-driven Huffman decoding; a padded lookup
    /// must be followed by [`BitReader::skip_bits`], which *does* fail on a
    /// truncated stream.
    #[inline]
    pub fn peek_bits(&self, len: u32) -> u32 {
        debug_assert!(len <= 32);
        if self.nbits >= len {
            // Fast path after a refill: one shift+mask.
            return cast::low_u32((self.acc >> (self.nbits - len)) & ((1u64 << len) - 1));
        }
        // Cold path (drained accumulator or near end of stream): assemble
        // the live bits plus upcoming bytes, zero-padding past the end.
        let mut acc = self.acc & ((1u64 << self.nbits) - 1);
        let mut have = self.nbits;
        let mut pos = self.pos;
        while have < len {
            let byte = self.data.get(pos).copied().unwrap_or(0);
            acc = (acc << 8) | u64::from(byte);
            have += 8;
            pos += 1;
        }
        cast::low_u32((acc >> (have - len)) & ((1u64 << len) - 1))
    }

    /// Consumes `len` bits (already inspected via [`BitReader::peek_bits`]).
    /// Fails when the stream holds fewer than `len` bits.
    #[inline]
    pub fn skip_bits(&mut self, len: u32) -> Option<()> {
        self.read_bits(len).map(|_| ())
    }

    /// Bits still available in the stream.
    #[inline]
    pub fn bits_remaining(&self) -> usize {
        (self.data.len() - self.pos) * 8 + self.nbits as usize
    }

    #[inline]
    pub fn read_u32(&mut self) -> Option<u32> {
        self.read_bits(32)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b00001, 5);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0001]);
    }

    #[test]
    fn varied_widths_roundtrip() {
        let values: Vec<(u32, u32)> = vec![
            (0, 1),
            (1, 1),
            (5, 3),
            (255, 8),
            (256, 9),
            (0xDEAD_BEEF, 32),
            (0x7FFF, 15),
            (1, 17),
        ];
        let mut w = BitWriter::new();
        for &(v, l) in &values {
            w.write_bits(v, l);
        }
        let total: u32 = values.iter().map(|&(_, l)| l).sum();
        assert_eq!(w.bit_len(), total as usize);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, l) in &values {
            assert_eq!(r.read_bits(l), Some(v), "width {l}");
        }
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let bytes = w.finish(); // one padded byte
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1000_0000));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn u32_roundtrip_unaligned() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.write_u32(0x1234_5678);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2), Some(0b11));
        assert_eq!(r.read_u32(), Some(0x1234_5678));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011_0110_101, 11);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(11), 0b1011_0110_101);
        assert_eq!(r.peek_bits(5), 0b10110);
        assert_eq!(r.bit_pos(), 0);
        assert_eq!(r.read_bits(11), Some(0b1011_0110_101));
    }

    #[test]
    fn peek_zero_pads_past_end() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.finish(); // one byte: 1100_0000
        let mut r = BitReader::new(&bytes);
        r.read_bits(8).unwrap();
        // Stream exhausted: peek returns zeros, skip fails.
        assert_eq!(r.peek_bits(11), 0);
        assert!(r.skip_bits(1).is_none());
    }

    #[test]
    fn peek_mid_byte() {
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.read_bits(3).unwrap(); // consume "101"
        assert_eq!(r.peek_bits(13), 0xABCD & 0x1FFF);
        assert_eq!(r.bits_remaining(), 13);
    }

    #[test]
    fn bit_pos_tracks_consumption() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0x3, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.read_bits(5);
        assert_eq!(r.bit_pos(), 5);
        r.read_bits(5);
        assert_eq!(r.bit_pos(), 10);
    }

    #[test]
    fn wide_peek_matches_reads() {
        // peek_bits now admits the full 32-bit width the reader supports.
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_u32(0xCAFE_F00D);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.read_bits(3).unwrap();
        assert_eq!(r.peek_bits(32), 0xCAFE_F00D);
        assert_eq!(r.read_u32(), Some(0xCAFE_F00D));
    }

    #[test]
    fn long_stream_matches_reference() {
        // Differential pin against the frozen byte-at-a-time implementation:
        // identical bytes out, identical values and positions back in.
        let widths = [1u32, 3, 7, 8, 11, 13, 16, 21, 27, 32];
        let mut w = BitWriter::new();
        let mut rw = crate::reference::RefBitWriter::new();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut expect = Vec::new();
        for i in 0..10_000usize {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let len = widths[i % widths.len()];
            let v = ((state >> 32) as u32) & (((1u64 << len) - 1) as u32);
            w.write_bits(v, len);
            rw.write_bits(v, len);
            expect.push((v, len));
        }
        let bytes = w.finish();
        assert_eq!(bytes, rw.finish(), "writer streams diverge");
        let mut r = BitReader::new(&bytes);
        let mut rr = crate::reference::RefBitReader::new(&bytes);
        for &(v, len) in &expect {
            assert_eq!(r.read_bits(len), Some(v));
            assert_eq!(rr.read_bits(len), Some(v));
            assert_eq!(r.bit_pos(), rr.bit_pos());
        }
    }

    #[test]
    fn failed_read_near_end_then_smaller_read() {
        // 12 bits in the stream: a 16-bit read must fail without losing the
        // ability to read the 12 real bits afterwards.
        let mut w = BitWriter::new();
        w.write_bits(0xABC, 12);
        let bytes = w.finish(); // two bytes, 4 pad bits
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(17), None);
        assert_eq!(r.read_bits(12), Some(0xABC));
    }
}
