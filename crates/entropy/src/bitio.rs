//! MSB-first bit-level writer and reader.
//!
//! MSB-first order lets canonical Huffman decoders compare accumulated code
//! values numerically against per-length first-code tables.

use cliz_grid::cast;

/// Accumulates bits MSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits buffered in `acc`, left-aligned count in [0, 8).
    acc: u8,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            out: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Writes the low `len` bits of `code`, most significant first.
    /// `len` must be ≤ 32.
    #[inline]
    pub fn write_bits(&mut self, code: u32, len: u32) {
        debug_assert!(len <= 32);
        debug_assert!(u64::from(code) < (1u64 << len) || len == 32);
        let mut remaining = len;
        while remaining > 0 {
            let free = 8 - self.nbits;
            let take = free.min(remaining);
            let shift = remaining - take;
            let chunk = cast::low_u8((code >> shift) & ((1u32 << take) - 1));
            // Widen before shifting: `take` may be 8 when the accumulator is
            // empty, and `u8 << 8` is UB-adjacent (panics in debug builds).
            self.acc = cast::low_u8((u16::from(self.acc) << take) | u16::from(chunk));
            self.nbits += take;
            remaining -= take;
            if self.nbits == 8 {
                self.out.push(self.acc);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u32::from(bit), 1);
    }

    /// Writes a full little-endian u32 (byte-aligned values; still packed at
    /// the current bit position).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bits(v, 32);
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Flushes (zero-padding the final byte) and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.acc <<= 8 - self.nbits;
            self.out.push(self.acc);
        }
        self.out
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load.
    pos: usize,
    /// Bits of `data[pos-1]` not yet consumed, right-aligned in `acc`.
    acc: u8,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Reads `len` bits MSB-first. Returns `None` when the stream is
    /// exhausted mid-read.
    #[inline]
    pub fn read_bits(&mut self, len: u32) -> Option<u32> {
        debug_assert!(len <= 32);
        let mut v: u32 = 0;
        let mut remaining = len;
        while remaining > 0 {
            if self.nbits == 0 {
                self.acc = *self.data.get(self.pos)?;
                self.pos += 1;
                self.nbits = 8;
            }
            let take = self.nbits.min(remaining);
            let shift = self.nbits - take;
            let chunk = (self.acc >> shift) & cast::low_u8((1u16 << take) - 1);
            v = (v << take) | u32::from(chunk);
            self.nbits -= take;
            remaining -= take;
        }
        Some(v)
    }

    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b == 1)
    }

    /// Peeks `len ≤ 16` bits without consuming, zero-padding past the end of
    /// the stream. Used by table-driven Huffman decoding; a padded lookup
    /// must be followed by [`BitReader::skip_bits`], which *does* fail on a
    /// truncated stream.
    #[inline]
    pub fn peek_bits(&self, len: u32) -> u32 {
        debug_assert!(len <= 16);
        // Assemble up to 24 valid bits starting at the cursor.
        let mut acc: u32 = u32::from(self.acc & cast::low_u8((1u16 << self.nbits) - 1));
        let mut have = self.nbits;
        let mut pos = self.pos;
        while have < len {
            let byte = self.data.get(pos).copied().unwrap_or(0);
            acc = (acc << 8) | u32::from(byte);
            have += 8;
            pos += 1;
        }
        (acc >> (have - len)) & ((1u32 << len) - 1)
    }

    /// Consumes `len` bits (already inspected via [`BitReader::peek_bits`]).
    /// Fails when the stream holds fewer than `len` bits.
    #[inline]
    pub fn skip_bits(&mut self, len: u32) -> Option<()> {
        self.read_bits(len).map(|_| ())
    }

    /// Bits still available in the stream.
    #[inline]
    pub fn bits_remaining(&self) -> usize {
        (self.data.len() - self.pos) * 8 + self.nbits as usize
    }

    #[inline]
    pub fn read_u32(&mut self) -> Option<u32> {
        self.read_bits(32)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b00001, 5);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0001]);
    }

    #[test]
    fn varied_widths_roundtrip() {
        let values: Vec<(u32, u32)> = vec![
            (0, 1),
            (1, 1),
            (5, 3),
            (255, 8),
            (256, 9),
            (0xDEAD_BEEF, 32),
            (0x7FFF, 15),
            (1, 17),
        ];
        let mut w = BitWriter::new();
        for &(v, l) in &values {
            w.write_bits(v, l);
        }
        let total: u32 = values.iter().map(|&(_, l)| l).sum();
        assert_eq!(w.bit_len(), total as usize);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, l) in &values {
            assert_eq!(r.read_bits(l), Some(v), "width {l}");
        }
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let bytes = w.finish(); // one padded byte
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1000_0000));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn u32_roundtrip_unaligned() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.write_u32(0x1234_5678);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2), Some(0b11));
        assert_eq!(r.read_u32(), Some(0x1234_5678));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011_0110_101, 11);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(11), 0b1011_0110_101);
        assert_eq!(r.peek_bits(5), 0b10110);
        assert_eq!(r.bit_pos(), 0);
        assert_eq!(r.read_bits(11), Some(0b1011_0110_101));
    }

    #[test]
    fn peek_zero_pads_past_end() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.finish(); // one byte: 1100_0000
        let mut r = BitReader::new(&bytes);
        r.read_bits(8).unwrap();
        // Stream exhausted: peek returns zeros, skip fails.
        assert_eq!(r.peek_bits(11), 0);
        assert!(r.skip_bits(1).is_none());
    }

    #[test]
    fn peek_mid_byte() {
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.read_bits(3).unwrap(); // consume "101"
        assert_eq!(r.peek_bits(13), 0xABCD & 0x1FFF);
        assert_eq!(r.bits_remaining(), 13);
    }

    #[test]
    fn bit_pos_tracks_consumption() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0x3, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.read_bits(5);
        assert_eq!(r.bit_pos(), 5);
        r.read_bits(5);
        assert_eq!(r.bit_pos(), 10);
    }
}
