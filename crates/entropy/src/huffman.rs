//! Canonical Huffman coding over a dense `u32` alphabet.
//!
//! Symbols are quantization-bin codes (zigzag-mapped, so small magnitudes get
//! small symbol ids). Codes are canonical: only the code *lengths* are
//! serialized, and both sides derive identical codebooks, which keeps the
//! table small and the format platform-independent.

use crate::bitio::{BitReader, BitWriter};
use cliz_grid::cast;

/// Longest admissible code. 32 bits fits the `BitWriter` word and is far
/// beyond what any realistic bin histogram produces.
const MAX_CODE_LEN: u32 = 32;

/// Builds optimal code lengths from symbol frequencies (heap-based Huffman).
/// If the depth exceeds `MAX_CODE_LEN` (pathological, near-Fibonacci
/// histograms), frequencies are halved and the tree rebuilt — the classic
/// zlib-style fallback, costing a negligible fraction of optimality.
fn build_lengths(freqs: &[u64]) -> Vec<u8> {
    let used: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
    let mut lens = vec![0u8; freqs.len()];
    match used.len() {
        0 => return lens,
        1 => {
            // A degenerate alphabet still needs 1 bit so the decoder can
            // count symbols.
            lens[used[0]] = 1;
            return lens;
        }
        _ => {}
    }

    let mut scaled: Vec<u64> = freqs.to_vec();
    loop {
        let depths = huffman_depths(&scaled, &used);
        let max = depths.iter().copied().max().unwrap_or(0);
        if max <= MAX_CODE_LEN {
            for (&s, &d) in used.iter().zip(&depths) {
                // max ≤ MAX_CODE_LEN = 32 just verified, so d fits a u8.
                lens[s] = cast::low_u8(d);
            }
            return lens;
        }
        for f in scaled.iter_mut() {
            if *f > 0 {
                *f = (*f + 1) / 2;
            }
        }
    }
}

/// Depth of each used symbol in a Huffman tree built over `used`'s
/// frequencies. Flat arrays instead of pointer nodes: parents are encoded as
/// indices into a growing array, then depths are propagated root-to-leaf.
fn huffman_depths(freqs: &[u64], used: &[usize]) -> Vec<u32> {
    let n = used.len();
    debug_assert!(n >= 2);
    // Node arrays: 0..n are leaves, n.. are internal.
    let mut weight: Vec<u64> = used.iter().map(|&s| freqs[s]).collect();
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    // Min-heap of (weight, node). BinaryHeap is a max-heap, so invert with Reverse.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..n)
        .map(|i| Reverse((weight[i], i)))
        .collect();
    while heap.len() > 1 {
        // The loop guard guarantees two entries, so the pops cannot fail.
        let (Some(Reverse((wa, a))), Some(Reverse((wb, b)))) = (heap.pop(), heap.pop()) else {
            break;
        };
        let node = weight.len();
        weight.push(wa + wb);
        parent.push(usize::MAX);
        parent[a] = node;
        parent[b] = node;
        heap.push(Reverse((wa + wb, node)));
    }
    // Depth of each leaf = #parent hops to the root.
    (0..n)
        .map(|leaf| {
            let mut d = 0u32;
            let mut node = leaf;
            while parent[node] != usize::MAX {
                node = parent[node];
                d += 1;
            }
            d
        })
        .collect()
}

/// Assigns canonical codes given code lengths. Returns codes indexed by
/// symbol; unused symbols keep code 0 with length 0.
fn canonical_codes(lens: &[u8]) -> Vec<u32> {
    let max_len = u32::from(lens.iter().copied().max().unwrap_or(0));
    let mut bl_count = vec![0u32; max_len as usize + 1];
    for &l in lens {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; max_len as usize + 2];
    let mut code = 0u32;
    for bits in 1..=max_len as usize {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = vec![0u32; lens.len()];
    for (s, &l) in lens.iter().enumerate() {
        if l > 0 {
            codes[s] = next_code[l as usize];
            next_code[l as usize] += 1;
        }
    }
    codes
}

/// Canonical Huffman encoder.
#[derive(Clone, Debug)]
pub struct HuffmanEncoder {
    lens: Vec<u8>,
    codes: Vec<u32>,
    /// Per-symbol `(code << 8) | len` — one load resolves both halves on the
    /// batched emission path. Length 0 marks a symbol absent from the book.
    entries: Vec<u64>,
}

impl HuffmanEncoder {
    /// Builds an encoder from per-symbol frequencies (index = symbol).
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let lens = build_lengths(freqs);
        let codes = canonical_codes(&lens);
        let entries = lens
            .iter()
            .zip(&codes)
            .map(|(&l, &c)| (u64::from(c) << 8) | u64::from(l))
            .collect();
        Self {
            lens,
            codes,
            entries,
        }
    }

    /// Convenience: histogram `symbols` (alphabet = max symbol + 1) and build.
    pub fn from_symbols(symbols: &[u32]) -> Self {
        let alphabet = symbols.iter().copied().max().map_or(0, |m| m as usize + 1);
        // Lane-split histogram: four counter banks break the
        // load-increment-store dependency on runs of equal symbols (the
        // common shape for quantization bins), then fold.
        let mut lanes = vec![0u64; alphabet * 4];
        let (l01, l23) = lanes.split_at_mut(alphabet * 2);
        let (l0, l1) = l01.split_at_mut(alphabet);
        let (l2, l3) = l23.split_at_mut(alphabet);
        let mut chunks = symbols.chunks_exact(4);
        for c in &mut chunks {
            l0[c[0] as usize] += 1;
            l1[c[1] as usize] += 1;
            l2[c[2] as usize] += 1;
            l3[c[3] as usize] += 1;
        }
        for &s in chunks.remainder() {
            l0[s as usize] += 1;
        }
        let mut freqs = vec![0u64; alphabet];
        for (s, f) in freqs.iter_mut().enumerate() {
            *f = l0[s] + l1[s] + l2[s] + l3[s];
        }
        Self::from_frequencies(&freqs)
    }

    /// Per-symbol code lengths (frozen-reference plumbing).
    #[inline]
    pub(crate) fn lens(&self) -> &[u8] {
        &self.lens
    }

    /// Per-symbol canonical codes (frozen-reference plumbing).
    #[inline]
    pub(crate) fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Code length (bits) for `symbol`, 0 when the symbol is unused.
    #[inline]
    pub fn code_len(&self, symbol: u32) -> u32 {
        self.lens.get(symbol as usize).map_or(0, |&l| u32::from(l))
    }

    /// `(code, len)` for `symbol` — `(0, 0)` when the symbol is unused.
    /// Callers batching their own emission (e.g. the zlite token loop) merge
    /// these into a u64 accumulator and flush through
    /// [`BitWriter::write_bits64`].
    #[inline]
    pub fn symbol_code(&self, symbol: u32) -> (u32, u32) {
        let e = self.entries.get(symbol as usize).copied().unwrap_or(0);
        (cast::low_u32(e >> 8), cast::low_u32(e & 0xFF))
    }

    /// Total encoded size in bits for a frequency histogram — used by the
    /// auto-tuner to estimate pipeline output without materializing streams.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * u64::from(self.code_len(cast::u32_len(s))))
            .sum()
    }

    /// Serializes the code-length table.
    ///
    /// Layout: `alphabet:u32, used:u32, then used × (symbol:u32, len:6 bits)`.
    /// Sparse pair form beats a dense length array because bin histograms are
    /// sharply peaked (few used symbols out of a 2^16 alphabet).
    pub fn write_table(&self, w: &mut BitWriter) {
        let used: Vec<u32> = (0..cast::u32_len(self.lens.len()))
            .filter(|&s| self.lens[s as usize] > 0)
            .collect();
        w.write_u32(cast::u32_len(self.lens.len()));
        w.write_u32(cast::u32_len(used.len()));
        for &s in &used {
            w.write_u32(s);
            w.write_bits(u32::from(self.lens[s as usize]), 6);
        }
    }

    /// Encodes one symbol.
    ///
    /// # Panics
    /// Panics if the symbol had zero frequency at build time — that is a
    /// caller bug, not a data condition.
    #[inline]
    pub fn encode_symbol(&self, symbol: u32, w: &mut BitWriter) {
        let len = self.lens[symbol as usize];
        assert!(len > 0, "encoding symbol {symbol} absent from the codebook");
        w.write_bits(self.codes[symbol as usize], u32::from(len));
    }

    /// Encodes a whole stream: codes are merged into a 64-bit accumulator
    /// and flushed through [`BitWriter::write_bits64`] only when the next
    /// code would not fit under 57 bits, so short codes (the quantization-bin
    /// common case) cost a shift+or instead of a writer call each.
    /// Byte-identical to symbol-at-a-time [`HuffmanEncoder::encode_symbol`].
    ///
    /// # Panics
    /// Panics if any symbol had zero frequency at build time.
    pub fn encode_all(&self, symbols: &[u32], w: &mut BitWriter) {
        let mut acc = 0u64;
        let mut bits = 0u32;
        for &s in symbols {
            let e = self.entries[s as usize];
            let len = cast::low_u32(e & 0xFF);
            assert!(len > 0, "encoding symbol {s} absent from the codebook");
            if bits + len > 57 {
                w.write_bits64(acc, bits);
                acc = 0;
                bits = 0;
            }
            acc = (acc << len) | (e >> 8);
            bits += len;
        }
        if bits > 0 {
            w.write_bits64(acc, bits);
        }
    }
}

/// Primary decode-table width: codes up to this many bits resolve with one
/// table lookup; longer codes fall back to the canonical peek-based walk.
/// Quantization-bin streams are dominated by 1-6-bit codes, so 11 bits
/// covers essentially every symbol.
const LUT_BITS: u32 = 11;

/// Symbols per packed-table entry. Quantization-bin streams concentrate on
/// 1-3-bit codes, so one 11-bit window routinely holds 4 complete codes —
/// one lookup then emits 4 symbols and advances once.
const PACK_SYMS: usize = 4;

/// One multi-symbol decode-table entry: the complete codes found at the
/// start of an 11-bit window, in order.
#[derive(Clone, Copy, Debug, Default)]
struct Pack {
    /// Decoded symbols (first `count` are valid).
    syms: [u32; PACK_SYMS],
    /// `ends[i]` = cumulative bits consumed through `syms[i]`.
    ends: [u8; PACK_SYMS],
    /// Number of complete symbols in the window; 0 = fall back.
    count: u8,
}

/// Canonical Huffman decoder, reconstructed from a serialized table.
#[derive(Clone, Debug)]
pub struct HuffmanDecoder {
    /// Symbols sorted by (length, symbol) — canonical order.
    sorted_symbols: Vec<u32>,
    /// `first_code[l]` = canonical code of the first length-`l` symbol.
    first_code: Vec<u32>,
    /// `first_index[l]` = index into `sorted_symbols` of that symbol.
    first_index: Vec<u32>,
    /// `count[l]` = number of length-`l` symbols.
    count: Vec<u32>,
    max_len: u32,
    /// Primary lookup: prefix → (symbol, code length); length 0 = fall back.
    lut: Vec<(u32, u8)>,
    /// Multi-symbol lookup: prefix → up to [`PACK_SYMS`] symbols + advance.
    pack: Vec<Pack>,
}

impl HuffmanDecoder {
    /// Reads a table serialized by [`HuffmanEncoder::write_table`].
    pub fn read_table(r: &mut BitReader) -> Option<Self> {
        let alphabet = r.read_u32()? as usize;
        let used = r.read_u32()? as usize;
        if used > alphabet || alphabet > crate::MAX_DECODE_ALPHABET {
            return None;
        }
        // `used` is untrusted: cap the pre-allocation (each entry consumes
        // ≥ 38 payload bits, so truncation errors out long before growth
        // becomes a problem).
        let mut pairs: Vec<(u32, u8)> = Vec::with_capacity(used.min(1 << 16));
        for _ in 0..used {
            let s = r.read_u32()?;
            let l = cast::low_u8(r.read_bits(6)?);
            if s as usize >= alphabet || l == 0 {
                return None;
            }
            pairs.push((s, l));
        }
        let mut lens = vec![0u8; alphabet];
        for &(s, l) in &pairs {
            lens[s as usize] = l;
        }
        Self::from_lengths(&lens)
    }

    /// Builds decode tables from code lengths. Returns `None` when the
    /// lengths do not form a prefix code (too long, or over-subscribed by
    /// the Kraft inequality) — a corrupt table, not a usable decoder.
    pub fn from_lengths(lens: &[u8]) -> Option<Self> {
        let max_len = u32::from(lens.iter().copied().max().unwrap_or(0));
        if max_len > MAX_CODE_LEN {
            return None;
        }
        // Kraft check: Σ 2^(MAX_CODE_LEN − len) must fit the unit budget.
        // Over-subscribed sets would overflow the canonical construction.
        let kraft = lens
            .iter()
            .filter(|&&l| l > 0)
            .try_fold(0u64, |a, &l| {
                a.checked_add(1u64 << (MAX_CODE_LEN - u32::from(l)))
            })?;
        if kraft > 1u64 << MAX_CODE_LEN {
            return None;
        }
        // Symbol ids are u32 by format; larger arrays cannot round-trip
        // through a table anyway, so out-of-range indices are dropped.
        let mut order: Vec<u32> = lens
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            .filter_map(|(s, _)| cast::to_u32_checked(s))
            .collect();
        order.sort_by_key(|&s| (lens[s as usize], s));

        let mut count = vec![0u32; max_len as usize + 1];
        for &s in &order {
            count[lens[s as usize] as usize] += 1;
        }
        // Canonical codes are computed in u64: a Kraft-valid set keeps every
        // length-l code below 2^l ≤ 2^32, but the *first unused* code after
        // a complete level can equal 2^l, which only fits the wider type.
        let mut first_code = vec![0u32; max_len as usize + 2];
        let mut first_index = vec![0u32; max_len as usize + 2];
        let mut code = 0u64;
        let mut index = 0u32;
        for l in 1..=max_len as usize {
            code = (code + u64::from(count[l - 1])) << 1;
            first_code[l] = cast::low_u32(code);
            first_index[l] = index;
            index += count[l];
        }
        // Primary LUT: every code of length ≤ LUT_BITS owns the block of
        // prefixes that start with it.
        let mut lut = vec![(0u32, 0u8); 1 << LUT_BITS];
        {
            let mut code = 0u64;
            let mut prev_len = 0u32;
            for &s in &order {
                let len = u32::from(lens[s as usize]);
                code <<= len - prev_len;
                prev_len = len;
                if len <= LUT_BITS {
                    let base = (code << (LUT_BITS - len)) as usize;
                    for slot in &mut lut[base..base + (1usize << (LUT_BITS - len))] {
                        *slot = (s, cast::low_u8(len));
                    }
                }
                code += 1;
            }
        }
        // Multi-symbol packed table: for every 11-bit window, greedily
        // resolve complete codes through the single-symbol LUT. A code is
        // accepted only when it fits entirely inside the window's remaining
        // bits, so every packed symbol comes from real (never padded) input.
        let mut pack = vec![Pack::default(); 1 << LUT_BITS];
        for (p, entry) in pack.iter_mut().enumerate() {
            let mut pos = 0u32;
            while (entry.count as usize) < PACK_SYMS {
                let sub = (p << pos) & ((1usize << LUT_BITS) - 1);
                let (sym, len) = lut[sub];
                if len == 0 || u32::from(len) > LUT_BITS - pos {
                    break;
                }
                entry.syms[entry.count as usize] = sym;
                pos += u32::from(len);
                entry.ends[entry.count as usize] = cast::low_u8(pos);
                entry.count += 1;
            }
        }
        Some(Self {
            sorted_symbols: order,
            first_code,
            first_index,
            count,
            max_len,
            lut,
            pack,
        })
    }

    /// Decodes one symbol; `None` on truncated or corrupt input.
    #[inline]
    pub fn decode_symbol(&self, r: &mut BitReader) -> Option<u32> {
        // Fast path: one table lookup resolves codes ≤ LUT_BITS. The peek
        // zero-pads past end-of-stream; skip_bits rejects over-reads, so a
        // fabricated match on padding still errors out correctly.
        let (symbol, len) = self.lut[r.peek_bits(LUT_BITS) as usize];
        if len != 0 {
            r.skip_bits(u32::from(len))?;
            return Some(symbol);
        }
        // Slow path: peek the whole max-length window once and walk the
        // per-length first-code tables without touching the stream, then
        // consume exactly the matched length. Codes ≤ LUT_BITS always hit
        // the LUT, so the walk starts past it. A match fabricated from
        // zero-padding fails in skip_bits, exactly like the fast path.
        let window = r.peek_bits(self.max_len);
        for l in (LUT_BITS + 1)..=self.max_len {
            let code = window >> (self.max_len - l);
            let delta = code.wrapping_sub(self.first_code[l as usize]);
            if delta < self.count[l as usize] {
                r.skip_bits(l)?;
                return Some(self.sorted_symbols[(self.first_index[l as usize] + delta) as usize]);
            }
        }
        None
    }

    /// Decodes exactly `n` symbols. `n` may come from an untrusted header:
    /// every symbol consumes ≥ 1 payload bit, so an honest `n` can never
    /// exceed the bits left in the stream — lying counts are rejected up
    /// front, which also bounds the output allocation at 32× the input.
    ///
    /// Hot loop: one packed-table lookup emits up to [`PACK_SYMS`] symbols
    /// with a single unconditional [`PACK_SYMS`]-lane store (no per-entry
    /// length branch — lanes past `count` are rewritten by the next
    /// iteration, which is why the loop keeps a full entry of slack below
    /// `n`). The packed path runs only while all [`LUT_BITS`] peeked bits
    /// are real (no end-of-stream padding), so the consumed bit count is
    /// identical to symbol-at-a-time decoding — pinned by the differential
    /// tests against [`crate::reference`].
    pub fn decode_all(&self, r: &mut BitReader, n: usize) -> Option<Vec<u32>> {
        if n > r.bits_remaining() {
            return None;
        }
        let mut out = vec![0u32; n];
        let mut pos = 0usize;
        while pos + PACK_SYMS <= n && r.bits_remaining() >= LUT_BITS as usize {
            let e = &self.pack[r.peek_bits(LUT_BITS) as usize];
            if e.count == 0 {
                // Long code (or corrupt prefix): resolve one symbol and
                // re-enter the packed loop.
                out[pos] = self.decode_symbol(r)?;
                pos += 1;
                continue;
            }
            out[pos..pos + PACK_SYMS].copy_from_slice(&e.syms);
            pos += e.count as usize;
            r.skip_bits(u32::from(e.ends[e.count as usize - 1]))?;
        }
        while pos < n {
            out[pos] = self.decode_symbol(r)?;
            pos += 1;
        }
        Some(out)
    }

    /// Decodes symbols, appending each to `out` as a raw byte while it is
    /// `< stop` (so `stop` must be ≤ 256); returns the first symbol ≥
    /// `stop`, which is also consumed. `None` on truncated/corrupt input.
    ///
    /// This is the deflate-style literal-run hot path: packed entries emit
    /// several literal bytes per table lookup, and the in-entry scan stops
    /// exactly at the first non-literal so length/distance extra bits that
    /// follow it stay aligned.
    pub fn decode_literal_run(
        &self,
        r: &mut BitReader,
        stop: u32,
        out: &mut Vec<u8>,
    ) -> Option<u32> {
        debug_assert!(stop <= 256);
        loop {
            if r.bits_remaining() >= LUT_BITS as usize {
                let e = &self.pack[r.peek_bits(LUT_BITS) as usize];
                if e.count > 0 {
                    let mut take = 0usize;
                    while take < e.count as usize && e.syms[take] < stop {
                        out.push(cast::low_u8(e.syms[take]));
                        take += 1;
                    }
                    if take < e.count as usize {
                        // Non-literal inside the entry: consume through it.
                        r.skip_bits(u32::from(e.ends[take]))?;
                        return Some(e.syms[take]);
                    }
                    r.skip_bits(u32::from(e.ends[e.count as usize - 1]))?;
                    continue;
                }
            }
            let sym = self.decode_symbol(r)?;
            if sym >= stop {
                return Some(sym);
            }
            out.push(cast::low_u8(sym));
        }
    }
}

/// One-call convenience: Huffman-encode `symbols` (table + payload).
pub fn encode_stream(symbols: &[u32]) -> Vec<u8> {
    let enc = HuffmanEncoder::from_symbols(symbols);
    let mut w = BitWriter::new();
    w.write_u32(cast::u32_len(symbols.len()));
    enc.write_table(&mut w);
    enc.encode_all(symbols, &mut w);
    w.finish()
}

/// Inverse of [`encode_stream`].
pub fn decode_stream(bytes: &[u8]) -> Option<Vec<u32>> {
    let mut r = BitReader::new(bytes);
    let n = r.read_u32()? as usize;
    let dec = HuffmanDecoder::read_table(&mut r)?;
    dec.decode_all(&mut r, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let bytes = encode_stream(symbols);
        let back = decode_stream(&bytes).expect("decode");
        assert_eq!(back, symbols);
    }

    #[test]
    fn roundtrip_small() {
        roundtrip(&[0, 1, 2, 1, 0, 0, 0, 3]);
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[7; 100]);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_two_symbols() {
        roundtrip(&[5, 9, 5, 5, 9]);
    }

    #[test]
    fn roundtrip_large_alphabet() {
        let symbols: Vec<u32> = (0..5000u32).map(|i| (i * i) % 700).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95% zeros: a fixed-width coding of the 0..=8 alphabet needs 4 bits
        // per symbol; Huffman should be close to the ~0.5-bit entropy.
        let mut symbols = vec![0u32; 9500];
        symbols.extend((0..500u32).map(|i| 1 + i % 8));
        let bytes = encode_stream(&symbols);
        let bits_per_symbol = (bytes.len() * 8) as f64 / symbols.len() as f64;
        assert!(
            bits_per_symbol < 2.0,
            "expected < 2 bits/symbol, got {bits_per_symbol}"
        );
        assert_eq!(decode_stream(&bytes).unwrap(), symbols);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        // Kraft inequality must hold with equality for a complete code.
        let kraft: f64 = (0..freqs.len())
            .map(|s| 2f64.powi(-(enc.code_len(s as u32) as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft sum {kraft}");
        // No code is a prefix of another.
        for a in 0..freqs.len() {
            for b in 0..freqs.len() {
                if a == b {
                    continue;
                }
                let (la, lb) = (enc.code_len(a as u32), enc.code_len(b as u32));
                if la <= lb {
                    let prefix = enc.codes[b] >> (lb - la);
                    assert_ne!(prefix, enc.codes[a], "code {a} prefixes {b}");
                }
            }
        }
    }

    #[test]
    fn optimality_on_classic_example() {
        // Frequencies 45,16,13,12,9,5 — the textbook example; expected total
        // cost = 45*1 + 16*3 + 13*3 + 12*3 + 9*4 + 5*4 = 224 bits.
        let freqs = [45u64, 16, 13, 12, 9, 5];
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        assert_eq!(enc.encoded_bits(&freqs), 224);
    }

    #[test]
    fn encoded_bits_matches_actual_stream() {
        let symbols: Vec<u32> = (0..2000u32).map(|i| i % 17).collect();
        let mut freqs = vec![0u64; 17];
        for &s in &symbols {
            freqs[s as usize] += 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        enc.encode_all(&symbols, &mut w);
        assert_eq!(w.bit_len() as u64, enc.encoded_bits(&freqs));
    }

    #[test]
    #[should_panic(expected = "absent from the codebook")]
    fn encoding_unknown_symbol_panics() {
        let enc = HuffmanEncoder::from_frequencies(&[10, 0, 10]);
        let mut w = BitWriter::new();
        enc.encode_symbol(1, &mut w);
    }

    #[test]
    fn corrupt_table_rejected() {
        let symbols = vec![1u32, 2, 3];
        let mut bytes = encode_stream(&symbols);
        // Truncate mid-table.
        bytes.truncate(4);
        assert_eq!(decode_stream(&bytes), None);
    }

    /// A geometric symbol distribution plus a handful of once-only symbols
    /// forces code lengths past LUT_BITS, so long streams exercise the
    /// packed loop, the single-symbol LUT, *and* the peek-based slow path.
    fn deep_tree_symbols() -> Vec<u32> {
        let mut out = Vec::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 24-bit draw → geometric via leading zeros: P(sym = k) ≈ 2^-(k+1).
            let r = ((state >> 40) as u32) | 1;
            out.push((r.leading_zeros() - 8).min(23));
        }
        // Singleton symbols: frequency 1 in a 20k stream ⇒ ~15-bit codes.
        out.extend(40..48u32);
        let enc = HuffmanEncoder::from_symbols(&out);
        assert!(
            (0..48).any(|s| enc.code_len(s) > LUT_BITS),
            "fixture must produce codes longer than LUT_BITS"
        );
        out
    }

    #[test]
    fn packed_decode_matches_reference_on_deep_tree() {
        let symbols = deep_tree_symbols();
        let bytes = encode_stream(&symbols);
        assert_eq!(bytes, crate::reference::ref_encode_stream(&symbols));
        assert_eq!(decode_stream(&bytes).expect("decode"), symbols);
        assert_eq!(
            crate::reference::ref_decode_stream(&bytes).expect("ref decode"),
            symbols
        );
    }

    #[test]
    fn packed_decode_consumes_same_bits_as_single_symbol() {
        let symbols = deep_tree_symbols();
        let enc = HuffmanEncoder::from_symbols(&symbols);
        let mut w = BitWriter::new();
        enc.write_table(&mut w);
        enc.encode_all(&symbols, &mut w);
        // Trailing sentinel after the payload: only reachable if the packed
        // loop left the cursor exactly where symbol-at-a-time decode would.
        w.write_bits(0x2A5, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let dec = HuffmanDecoder::read_table(&mut r).expect("table");
        let back = dec.decode_all(&mut r, symbols.len()).expect("payload");
        assert_eq!(back, symbols);
        assert_eq!(r.read_bits(10), Some(0x2A5));
    }

    #[test]
    fn literal_run_stops_at_marker() {
        // Alphabet: bytes 0..=9 are "literals", 300 is the stop marker.
        let mut symbols: Vec<u32> = (0..500u32).map(|i| i % 10).collect();
        symbols.push(300);
        symbols.extend((0..37u32).map(|i| i % 3));
        symbols.push(300);
        let enc = HuffmanEncoder::from_symbols(&symbols);
        let mut w = BitWriter::new();
        enc.write_table(&mut w);
        enc.encode_all(&symbols, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let dec = HuffmanDecoder::read_table(&mut r).expect("table");

        let mut run = Vec::new();
        assert_eq!(dec.decode_literal_run(&mut r, 256, &mut run), Some(300));
        assert_eq!(run.len(), 500);
        assert!(run.iter().enumerate().all(|(i, &b)| u32::from(b) == (i as u32) % 10));
        run.clear();
        assert_eq!(dec.decode_literal_run(&mut r, 256, &mut run), Some(300));
        assert_eq!(run.len(), 37);
        // Stream exhausted: the next run hits truncation.
        assert_eq!(dec.decode_literal_run(&mut r, 256, &mut run), None);
    }

    #[test]
    fn truncated_payload_rejected_by_packed_path() {
        let symbols = deep_tree_symbols();
        let bytes = encode_stream(&symbols);
        for cut in [bytes.len() - 1, bytes.len() - 7, bytes.len() / 2] {
            // Truncation must never silently reproduce the original stream;
            // and the packed path must agree with the frozen reference even
            // on damaged input.
            let got = decode_stream(&bytes[..cut]);
            assert_ne!(got.as_deref(), Some(&symbols[..]), "cut at {cut}");
            assert_eq!(
                got,
                crate::reference::ref_decode_stream(&bytes[..cut]),
                "cut at {cut}"
            );
        }
    }
}
