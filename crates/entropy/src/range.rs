//! Order-0 static range coder (LZMA-style carry handling).
//!
//! An arithmetic-family alternative to the Huffman stage: symbols cost their
//! true fractional entropy instead of whole bits, which matters for the
//! heavily peaked quantization-bin histograms CliZ produces (a 95%-probable
//! zero bin costs ~0.07 bits here vs a full bit under Huffman). Included to
//! quantify what the paper's multi-Huffman design leaves on the table
//! relative to (slower) arithmetic coding — see the `ablation_entropy`
//! harness.

use cliz_grid::cast;

/// Total frequency scale (power of two so division is exact and cheap).
const TOTAL_BITS: u32 = 16;
const TOTAL: u32 = 1 << TOTAL_BITS;
const TOP: u32 = 1 << 24;

/// Scales a histogram to sum exactly [`TOTAL`], keeping every used symbol's
/// frequency ≥ 1.
fn scale_frequencies(freqs: &[u64]) -> Vec<u32> {
    let sum: u64 = freqs.iter().sum();
    assert!(sum > 0, "empty histogram");
    let used = freqs.iter().filter(|&&f| f > 0).count() as u64;
    assert!(
        used <= u64::from(TOTAL),
        "alphabet too large for the frequency scale"
    );
    let mut scaled: Vec<u32> = freqs
        .iter()
        .map(|&f| {
            if f == 0 {
                0
            } else {
                // u128 so extreme counts (≫ 2^48) cannot overflow the scale;
                // the quotient is ≤ TOTAL because f ≤ sum.
                let v = (u128::from(f) * u128::from(TOTAL) / u128::from(sum)).max(1);
                cast::to_u32_checked(v).unwrap_or(TOTAL)
            }
        })
        .collect();
    // Exact-sum repair: drain or add from/to the largest buckets.
    let mut total: i64 = scaled.iter().map(|&f| i64::from(f)).sum();
    while total != i64::from(TOTAL) {
        let found = if total > i64::from(TOTAL) {
            // Shrink the largest shrinkable bucket. One always exists: if
            // every bucket were 1, total = used ≤ TOTAL and we would not be
            // in this branch.
            (0..scaled.len())
                .filter(|&i| scaled[i] > 1)
                .max_by_key(|&i| scaled[i])
        } else {
            (0..scaled.len())
                .filter(|&i| scaled[i] > 0)
                .max_by_key(|&i| scaled[i])
        };
        let Some(idx) = found else {
            // Unreachable given the `used` bound asserted above; bail rather
            // than spin forever if the invariant is ever broken.
            break;
        };
        if total > i64::from(TOTAL) {
            scaled[idx] -= 1;
            total -= 1;
        } else {
            scaled[idx] += 1;
            total += 1;
        }
    }
    scaled
}

struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    /// Pending bytes: 1 cache byte + (cache_size − 1) 0xFF bytes awaiting a
    /// possible carry.
    cache_size: u64,
    out: Vec<u8>,
    first: bool,
}

impl RangeEncoder {
    fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
            first: true,
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if cast::low_u32(self.low) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = cast::low_u8(self.low >> 32);
            if !self.first {
                self.out.push(self.cache.wrapping_add(carry));
            }
            for _ in 1..self.cache_size {
                self.out.push(0xFFu8.wrapping_add(carry));
            }
            self.first = false;
            self.cache = cast::low_u8(self.low >> 24);
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    #[inline]
    fn encode(&mut self, cum: u32, freq: u32) {
        debug_assert!(freq > 0 && cum + freq <= TOTAL);
        let r = self.range >> TOTAL_BITS;
        self.low += u64::from(r) * u64::from(cum);
        self.range = r * freq;
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

struct RangeDecoder<'a> {
    range: u32,
    code: u32,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        let mut d = Self {
            range: u32::MAX,
            code: 0,
            bytes,
            pos: 0,
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | u32::from(d.next_byte());
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Returns the cumulative-frequency position of the next symbol.
    #[inline]
    fn decode_position(&mut self) -> u32 {
        let r = self.range >> TOTAL_BITS;
        (self.code / r).min(TOTAL - 1)
    }

    /// Consumes the symbol whose slot is `[cum, cum+freq)`.
    #[inline]
    fn consume(&mut self, cum: u32, freq: u32) {
        let r = self.range >> TOTAL_BITS;
        self.code -= r * cum;
        self.range = r * freq;
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte());
            self.range <<= 8;
        }
    }
}

/// Encodes a symbol stream with a static order-0 model.
/// Layout: `count u32 | alphabet u32 | used u32 | used×(symbol u32, freq u16)
/// | range-coder bytes`.
///
/// ```
/// use cliz_entropy::{range_encode_stream, range_decode_stream};
/// let symbols: Vec<u32> = (0..1000).map(|i| if i % 9 == 0 { 2 } else { 1 }).collect();
/// let bytes = range_encode_stream(&symbols);
/// assert_eq!(range_decode_stream(&bytes), Some(symbols));
/// assert!(bytes.len() < 150); // ~0.5 bits/symbol on this skewed stream
/// ```
pub fn range_encode_stream(symbols: &[u32]) -> Vec<u8> {
    let alphabet = symbols.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut out = Vec::new();
    out.extend_from_slice(&cast::u32_len(symbols.len()).to_le_bytes());
    out.extend_from_slice(&cast::u32_len(alphabet).to_le_bytes());
    if symbols.is_empty() {
        out.extend_from_slice(&0u32.to_le_bytes());
        return out;
    }
    let mut freqs = vec![0u64; alphabet];
    for &s in symbols {
        freqs[s as usize] += 1;
    }
    let scaled = scale_frequencies(&freqs);
    let used: Vec<u32> = (0..cast::u32_len(alphabet))
        .filter(|&s| scaled[s as usize] > 0)
        .collect();
    out.extend_from_slice(&cast::u32_len(used.len()).to_le_bytes());
    for &s in &used {
        out.extend_from_slice(&s.to_le_bytes());
        // TOTAL itself (single-symbol stream) is stored as 0.
        out.extend_from_slice(&cast::low_u16(scaled[s as usize] % TOTAL).to_le_bytes());
    }

    // Cumulative table.
    let mut cum = vec![0u32; alphabet + 1];
    for s in 0..alphabet {
        cum[s + 1] = cum[s] + scaled[s];
    }
    let mut enc = RangeEncoder::new();
    for &s in symbols {
        enc.encode(cum[s as usize], scaled[s as usize]);
    }
    out.extend_from_slice(&enc.finish());
    out
}

/// Inverse of [`range_encode_stream`].
pub fn range_decode_stream(bytes: &[u8]) -> Option<Vec<u32>> {
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let end = pos.checked_add(n)?;
        let s = bytes.get(*pos..end)?;
        *pos = end;
        Some(s)
    };
    let mut pos = 0usize;
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let alphabet = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let used = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    if count == 0 {
        return Some(Vec::new());
    }
    if used == 0 || used > alphabet || alphabet > crate::MAX_DECODE_ALPHABET {
        return None;
    }
    // Each used entry occupies 6 bytes; reject a count the stream cannot
    // possibly back before looping over it.
    if used.checked_mul(6)? > bytes.len().saturating_sub(pos) {
        return None;
    }
    let mut scaled = vec![0u32; alphabet];
    for _ in 0..used {
        let s = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let f = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?);
        if s >= alphabet {
            return None;
        }
        scaled[s] = if f == 0 { TOTAL } else { u32::from(f) };
    }
    let mut cum = vec![0u32; alphabet + 1];
    for s in 0..alphabet {
        cum[s + 1] = cum[s].checked_add(scaled[s])?;
    }
    if cum[alphabet] != TOTAL {
        return None;
    }
    // Symbol lookup by cumulative position: binary search over `cum`.
    let mut dec = RangeDecoder::new(bytes.get(pos..)?);
    // `count` is an untrusted header field: cap the pre-allocation.
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let p = dec.decode_position();
        // Largest s with cum[s] <= p.
        let s = cum.partition_point(|&c| c <= p) - 1;
        if s >= alphabet || scaled[s] == 0 {
            return None;
        }
        dec.consume(cum[s], scaled[s]);
        out.push(cast::to_u32_checked(s)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) -> usize {
        let bytes = range_encode_stream(symbols);
        let back = range_decode_stream(&bytes).expect("decode");
        assert_eq!(back, symbols);
        bytes.len()
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[5; 1000]);
        roundtrip(&[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn roundtrip_peaked_stream() {
        let symbols: Vec<u32> = (0..50_000)
            .map(|i| match i % 100 {
                0..=94 => 1u32,
                95..=97 => 2,
                _ => 3 + (i % 7) as u32,
            })
            .collect();
        let n = roundtrip(&symbols);
        // ~0.4 bits/symbol entropy; must land well under 1 bit/symbol
        // (where Huffman is pinned).
        let bits_per_symbol = (n * 8) as f64 / symbols.len() as f64;
        assert!(
            bits_per_symbol < 0.7,
            "{bits_per_symbol} bits/symbol ({n} bytes for {})",
            symbols.len()
        );
    }

    #[test]
    fn beats_huffman_on_skewed_bins() {
        let symbols: Vec<u32> = (0..40_000)
            .map(|i| if i % 20 == 0 { 2 } else { 1 })
            .collect();
        let rc = range_encode_stream(&symbols).len();
        let hf = crate::huffman::encode_stream(&symbols).len();
        assert!(rc < hf / 2, "range {rc} vs huffman {hf}");
    }

    #[test]
    fn roundtrip_large_alphabet() {
        let symbols: Vec<u32> = (0..30_000u32).map(|i| (i * i) % 4096).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn roundtrip_adversarial_patterns() {
        // Runs, alternations, and ramps stress the carry logic.
        let mut v = vec![0u32; 500];
        v.extend([1u32, 0].repeat(500));
        v.extend(0..2000u32);
        v.extend(std::iter::repeat_n(1999u32, 700));
        roundtrip(&v);
    }

    #[test]
    fn scaled_frequencies_sum_exactly() {
        for freqs in [
            vec![1u64, 1, 1],
            vec![1_000_000, 1, 1, 1],
            vec![3, 0, 0, 9, 0, 27],
            vec![u64::MAX / 4, 1],
        ] {
            let scaled = scale_frequencies(&freqs);
            assert_eq!(scaled.iter().map(|&f| u64::from(f)).sum::<u64>(), u64::from(TOTAL));
            for (s, f) in scaled.iter().zip(&freqs) {
                assert_eq!(*s == 0, *f == 0, "zero preservation");
            }
        }
    }

    #[test]
    fn corrupt_input_rejected_or_detected() {
        let symbols: Vec<u32> = (0..100u32).map(|i| i % 3).collect();
        let bytes = range_encode_stream(&symbols);
        assert!(range_decode_stream(&bytes[..6]).is_none());
        // Header corruption (frequency table) must not panic.
        let mut b = bytes.clone();
        b[8] ^= 0xFF;
        let _ = range_decode_stream(&b);
    }
}
