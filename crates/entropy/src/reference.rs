//! Frozen pre-rewrite reference implementations of the bit I/O and Huffman
//! kernels, kept verbatim from before the word-at-a-time rewrite.
//!
//! These exist for two reasons and must **never** be "optimized":
//!
//! * **Differential oracles.** The rewritten [`crate::BitWriter`] /
//!   [`crate::BitReader`] / [`crate::HuffmanDecoder`] must produce and
//!   consume byte-identical streams. The differential tests sweep seeded
//!   symbol distributions through both implementations and assert equality
//!   of every byte and every decoded symbol, including tail-bit and
//!   empty-stream edge cases.
//! * **Same-host performance baseline.** `stage_bench` measures these
//!   kernels in the same process as the rewritten ones, so the committed
//!   `BENCH_stages.json` proves the throughput delta on one host instead of
//!   comparing numbers captured on different machines.
//!
//! The module deliberately keeps the byte-at-a-time accumulators and the
//! bit-by-bit canonical walk that rules R11/R12 exist to reject, so the
//! offending sites carry argued suppressions.

use cliz_grid::cast;

/// Byte-at-a-time MSB-first bit writer (pre-rewrite `BitWriter`).
#[derive(Debug, Default)]
pub struct RefBitWriter {
    out: Vec<u8>,
    acc: u8,
    nbits: u32,
}

impl RefBitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `len` bits of `code`, most significant first.
    // xtask-allow-fn: R12 -- frozen pre-rewrite reference: the byte-at-a-time
    // accumulator loop is the behaviour the differential oracle pins.
    #[inline]
    pub fn write_bits(&mut self, code: u32, len: u32) {
        debug_assert!(len <= 32);
        let mut remaining = len;
        while remaining > 0 {
            let free = 8 - self.nbits;
            let take = free.min(remaining);
            let shift = remaining - take;
            let chunk = cast::low_u8((code >> shift) & ((1u32 << take) - 1));
            self.acc = cast::low_u8((u16::from(self.acc) << take) | u16::from(chunk));
            self.nbits += take;
            remaining -= take;
            if self.nbits == 8 {
                self.out.push(self.acc);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bits(v, 32);
    }

    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Flushes (zero-padding the final byte) and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.acc <<= 8 - self.nbits;
            self.out.push(self.acc);
        }
        self.out
    }
}

/// Byte-at-a-time MSB-first bit reader (pre-rewrite `BitReader`).
#[derive(Debug)]
pub struct RefBitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u8,
    nbits: u32,
}

impl<'a> RefBitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Reads `len` bits MSB-first; `None` when the stream is exhausted.
    // xtask-allow-fn: R12 -- frozen pre-rewrite reference: loads one byte per
    // loop pass on purpose; the rewrite's refill buffer is diffed against it.
    #[inline]
    pub fn read_bits(&mut self, len: u32) -> Option<u32> {
        debug_assert!(len <= 32);
        let mut v: u32 = 0;
        let mut remaining = len;
        while remaining > 0 {
            if self.nbits == 0 {
                self.acc = *self.data.get(self.pos)?;
                self.pos += 1;
                self.nbits = 8;
            }
            let take = self.nbits.min(remaining);
            let shift = self.nbits - take;
            let chunk = (self.acc >> shift) & cast::low_u8((1u16 << take) - 1);
            v = (v << take) | u32::from(chunk);
            self.nbits -= take;
            remaining -= take;
        }
        Some(v)
    }

    /// Peeks `len ≤ 16` bits, zero-padding past the end of the stream.
    // xtask-allow-fn: R12 -- frozen pre-rewrite reference: byte-at-a-time
    // peek assembly is the pinned behaviour.
    #[inline]
    pub fn peek_bits(&self, len: u32) -> u32 {
        debug_assert!(len <= 16);
        let mut acc: u32 = u32::from(self.acc & cast::low_u8((1u16 << self.nbits) - 1));
        let mut have = self.nbits;
        let mut pos = self.pos;
        while have < len {
            let byte = self.data.get(pos).copied().unwrap_or(0);
            acc = (acc << 8) | u32::from(byte);
            have += 8;
            pos += 1;
        }
        (acc >> (have - len)) & ((1u32 << len) - 1)
    }

    #[inline]
    pub fn skip_bits(&mut self, len: u32) -> Option<()> {
        self.read_bits(len).map(|_| ())
    }

    #[inline]
    pub fn read_u32(&mut self) -> Option<u32> {
        self.read_bits(32)
    }

    pub fn bit_pos(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }
}

const MAX_CODE_LEN: u32 = 32;
const LUT_BITS: u32 = 11;

/// Pre-rewrite single-symbol-LUT canonical Huffman decoder.
#[derive(Clone, Debug)]
pub struct RefHuffmanDecoder {
    sorted_symbols: Vec<u32>,
    first_code: Vec<u32>,
    first_index: Vec<u32>,
    count: Vec<u32>,
    max_len: u32,
    /// Prefix → (symbol, code length); length 0 = fall back to the walk.
    lut: Vec<(u32, u8)>,
}

impl RefHuffmanDecoder {
    /// Reads a table serialized by [`crate::HuffmanEncoder::write_table`].
    pub fn read_table(r: &mut RefBitReader) -> Option<Self> {
        let alphabet = r.read_u32()? as usize;
        let used = r.read_u32()? as usize;
        if used > alphabet || alphabet > crate::MAX_DECODE_ALPHABET {
            return None;
        }
        let mut pairs: Vec<(u32, u8)> = Vec::with_capacity(used.min(1 << 16));
        for _ in 0..used {
            let s = r.read_u32()?;
            let l = cast::low_u8(r.read_bits(6)?);
            if s as usize >= alphabet || l == 0 {
                return None;
            }
            pairs.push((s, l));
        }
        let mut lens = vec![0u8; alphabet];
        for &(s, l) in &pairs {
            lens[s as usize] = l;
        }
        Self::from_lengths(&lens)
    }

    /// Builds decode tables from code lengths (Kraft-checked).
    pub fn from_lengths(lens: &[u8]) -> Option<Self> {
        let max_len = u32::from(lens.iter().copied().max().unwrap_or(0));
        if max_len > MAX_CODE_LEN {
            return None;
        }
        let kraft = lens.iter().filter(|&&l| l > 0).try_fold(0u64, |a, &l| {
            a.checked_add(1u64 << (MAX_CODE_LEN - u32::from(l)))
        })?;
        if kraft > 1u64 << MAX_CODE_LEN {
            return None;
        }
        let mut order: Vec<u32> = lens
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            .filter_map(|(s, _)| cast::to_u32_checked(s))
            .collect();
        order.sort_by_key(|&s| (lens[s as usize], s));

        let mut count = vec![0u32; max_len as usize + 1];
        for &s in &order {
            count[lens[s as usize] as usize] += 1;
        }
        let mut first_code = vec![0u32; max_len as usize + 2];
        let mut first_index = vec![0u32; max_len as usize + 2];
        let mut code = 0u64;
        let mut index = 0u32;
        for l in 1..=max_len as usize {
            code = (code + u64::from(count[l - 1])) << 1;
            first_code[l] = cast::low_u32(code);
            first_index[l] = index;
            index += count[l];
        }
        let mut lut = vec![(0u32, 0u8); 1 << LUT_BITS];
        {
            let mut code = 0u64;
            let mut prev_len = 0u32;
            for &s in &order {
                let len = u32::from(lens[s as usize]);
                code <<= len - prev_len;
                prev_len = len;
                if len <= LUT_BITS {
                    let base = (code << (LUT_BITS - len)) as usize;
                    for slot in &mut lut[base..base + (1usize << (LUT_BITS - len))] {
                        *slot = (s, cast::low_u8(len));
                    }
                }
                code += 1;
            }
        }
        Some(Self {
            sorted_symbols: order,
            first_code,
            first_index,
            count,
            max_len,
            lut,
        })
    }

    /// Decodes one symbol: single-symbol LUT, then bit-by-bit canonical walk.
    // xtask-allow-fn: R12 -- frozen pre-rewrite reference: the read_bits(1)
    // walk is exactly what the multi-symbol rewrite is measured against.
    #[inline]
    pub fn decode_symbol(&self, r: &mut RefBitReader) -> Option<u32> {
        let (symbol, len) = self.lut[r.peek_bits(LUT_BITS) as usize];
        if len != 0 {
            r.skip_bits(u32::from(len))?;
            return Some(symbol);
        }
        let mut code = 0u32;
        for l in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bits(1)?;
            let delta = code.wrapping_sub(self.first_code[l]);
            if delta < self.count[l] {
                return Some(self.sorted_symbols[(self.first_index[l] + delta) as usize]);
            }
        }
        None
    }

    /// Decodes exactly `n` symbols, one [`Self::decode_symbol`] per symbol.
    pub fn decode_all(&self, r: &mut RefBitReader, n: usize) -> Option<Vec<u32>> {
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.decode_symbol(r)?);
        }
        Some(out)
    }
}

/// Writes `enc`'s code-length table through the reference writer — the same
/// layout as [`crate::HuffmanEncoder::write_table`], frozen against the
/// byte-at-a-time writer so reference streams are built end-to-end on the
/// pre-rewrite path.
pub fn ref_write_table(enc: &crate::HuffmanEncoder, w: &mut RefBitWriter) {
    let lens = enc.lens();
    let used: Vec<u32> = (0..cast::u32_len(lens.len()))
        .filter(|&s| lens[s as usize] > 0)
        .collect();
    w.write_u32(cast::u32_len(lens.len()));
    w.write_u32(cast::u32_len(used.len()));
    for &s in &used {
        w.write_u32(s);
        w.write_bits(u32::from(lens[s as usize]), 6);
    }
}

/// Encodes one symbol through the reference writer.
///
/// # Panics
/// Panics if the symbol had zero frequency at build time (caller bug).
#[inline]
pub fn ref_encode_symbol(enc: &crate::HuffmanEncoder, symbol: u32, w: &mut RefBitWriter) {
    let len = enc.lens()[symbol as usize];
    assert!(len > 0, "encoding symbol {symbol} absent from the codebook");
    w.write_bits(enc.codes()[symbol as usize], u32::from(len));
}

/// Pre-rewrite [`crate::huffman::encode_stream`]: identical codebook
/// construction routed through the byte-at-a-time writer.
pub fn ref_encode_stream(symbols: &[u32]) -> Vec<u8> {
    let enc = crate::HuffmanEncoder::from_symbols(symbols);
    let mut w = RefBitWriter::new();
    w.write_u32(cast::u32_len(symbols.len()));
    ref_write_table(&enc, &mut w);
    for &s in symbols {
        ref_encode_symbol(&enc, s, &mut w);
    }
    w.finish()
}

/// Pre-rewrite [`crate::huffman::decode_stream`].
pub fn ref_decode_stream(bytes: &[u8]) -> Option<Vec<u32>> {
    let mut r = RefBitReader::new(bytes);
    let n = r.read_u32()? as usize;
    let dec = RefHuffmanDecoder::read_table(&mut r)?;
    dec.decode_all(&mut r, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_roundtrips() {
        let symbols: Vec<u32> = (0..5000u32).map(|i| (i * i) % 700).collect();
        let bytes = ref_encode_stream(&symbols);
        assert_eq!(ref_decode_stream(&bytes), Some(symbols));
    }

    #[test]
    fn reference_reader_matches_writer() {
        let mut w = RefBitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b00001, 5);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0001]);
        let mut r = RefBitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(5), Some(0b00001));
        assert_eq!(r.read_bits(1), None);
    }
}
