//! Bin ↔ symbol mapping.
//!
//! Quantization bins are signed and sharply peaked at 0; Huffman symbols are
//! dense unsigned ids. Zigzag maps 0,−1,1,−2,2,… to 1,2,3,4,5,… so small
//! magnitudes get small symbols; symbol 0 is reserved as the *escape* marker
//! for unpredictable points whose exact value travels in a literal channel.

/// Reserved symbol marking an unpredictable (literal) value.
pub const ESCAPE: u32 = 0;

/// Zigzag-encodes a signed bin into a symbol ≥ 1.
#[inline]
pub fn bin_to_symbol(bin: i32) -> u32 {
    let z = ((bin << 1) ^ (bin >> 31)).cast_unsigned();
    z + 1
}

/// Inverse of [`bin_to_symbol`].
///
/// # Panics
/// Debug-panics on [`ESCAPE`] — callers must handle escapes before decoding.
#[inline]
pub fn symbol_to_bin(symbol: u32) -> i32 {
    debug_assert_ne!(symbol, ESCAPE, "escape symbol has no bin value");
    let z = symbol - 1;
    (z >> 1).cast_signed() ^ -((z & 1).cast_signed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_ordering() {
        // Small magnitudes -> small symbols, with 0 the smallest.
        assert_eq!(bin_to_symbol(0), 1);
        assert_eq!(bin_to_symbol(-1), 2);
        assert_eq!(bin_to_symbol(1), 3);
        assert_eq!(bin_to_symbol(-2), 4);
        assert_eq!(bin_to_symbol(2), 5);
    }

    #[test]
    fn roundtrip_range() {
        for bin in -70_000i32..70_000 {
            assert_eq!(symbol_to_bin(bin_to_symbol(bin)), bin);
        }
    }

    #[test]
    fn escape_is_reserved() {
        // No bin maps to the escape symbol.
        for bin in -1000i32..1000 {
            assert_ne!(bin_to_symbol(bin), ESCAPE);
        }
    }
}
