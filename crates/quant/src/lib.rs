//! Error-bounded linear-scale quantization and quantization-bin
//! classification for CliZ.
//!
//! The SZ3 framework turns prediction errors into integer *bins* with a
//! fixed step of `2·eb`, guaranteeing `|x − x̂| ≤ eb` pointwise; errors too
//! large for the bin range escape to a literal channel. CliZ adds the
//! Sec. VI-E classification stage: per-horizontal-position bin *shifting*
//! (recentering each location's dominant bin at zero, `j = 1`) and
//! *dispersion* grouping with threshold `λ = 0.4` (Theorem 2), which feeds
//! the multi-Huffman coder.

// Decode paths must never panic on untrusted input (see docs/STATIC_ANALYSIS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bound;
pub mod classify;
pub mod quantizer;
pub mod symbol;

pub use bound::ErrorBound;
pub use classify::{classify, Classification, ClassifySpec};
pub use quantizer::{LinearQuantizer, Quantized};
pub use symbol::{bin_to_symbol, symbol_to_bin, ESCAPE};
