//! Error-bounded linear-scale quantizer (the SZ3 quantizer CliZ inherits).

use crate::symbol::{bin_to_symbol, symbol_to_bin, ESCAPE};
use cliz_grid::cast;

/// Outcome of quantizing one value against its prediction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Quantized {
    /// Value representable as `pred + 2·eb·bin`; `recon` is the decoder-side
    /// reconstruction (bit-identical on both sides).
    Bin { symbol: u32, recon: f32 },
    /// Prediction too far off — the exact value is stored literally.
    Escape,
}

/// Fixed-step linear quantizer with an escape channel.
///
/// `radius` bounds |bin|; SZ3's default of 32768 (capacity 2^16) is kept.
/// Every reconstruction satisfies `|x − recon| ≤ eb` — verified post-hoc with
/// the exact f32 arithmetic the decoder will use, so float rounding can never
/// silently break the bound.
#[derive(Clone, Copy, Debug)]
pub struct LinearQuantizer {
    eb: f64,
    radius: i32,
}

impl LinearQuantizer {
    pub fn new(eb: f64) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        Self { eb, radius: 1 << 15 }
    }

    pub fn with_radius(eb: f64, radius: i32) -> Self {
        assert!(radius > 0);
        let mut q = Self::new(eb);
        q.radius = radius;
        q
    }

    #[inline]
    pub fn eb(&self) -> f64 {
        self.eb
    }

    /// Maximum |bin| this quantizer emits (the escape threshold).
    #[inline]
    pub fn radius(&self) -> i32 {
        self.radius
    }

    /// Quantization step: the bin width `2·eb`. The only place the error
    /// bound is scaled — encoder and decoder both go through this helper so
    /// the two sides can never disagree on the step (xtask rule R8).
    #[inline]
    fn eb_step(&self) -> f64 {
        2.0 * self.eb
    }

    /// Largest symbol this quantizer can emit (for alphabet sizing).
    /// Zigzag maps `+radius` above `-radius`, so that is the extreme.
    pub fn max_symbol(&self) -> u32 {
        bin_to_symbol(self.radius)
    }

    /// Quantizes `value` against `pred`.
    // xtask-allow-fn: R4 -- thin wrapper over quantize_select, which asserts the error-bound invariant on every emitted bin
    #[inline]
    pub fn quantize(&self, value: f32, pred: f64) -> Quantized {
        let (symbol, recon, ok) = self.quantize_select(value, pred);
        if ok {
            Quantized::Bin { symbol, recon }
        } else {
            Quantized::Escape
        }
    }

    /// Branch-free form of [`Self::quantize`] for hot encode loops: returns
    /// `(symbol, recon, ok)` where `ok == false` means escape, in which case
    /// `symbol` is [`ESCAPE`] and `recon` is `value` unchanged (so callers
    /// may unconditionally store both without altering buffer contents on
    /// the escape path). Decision-identical to `quantize` — same rounding,
    /// same radius/overflow/exactness rejections — but every rejection is a
    /// flag folded into one select instead of an early return, so the loop
    /// body compiles to straight-line code with conditional moves.
    #[inline]
    pub fn quantize_select(&self, value: f32, pred: f64) -> (u32, f32, bool) {
        let err = f64::from(value) - pred;
        let step = self.eb_step();
        // quantize_round_index_select folds the `.round()` into the radius
        // check (bit-identical to `quantize_index((err / step).round(), r)`,
        // pinned by a differential sweep in cliz-grid); `in_radius` is false
        // for NaN/inf bin estimates, so neither can wrap into a bogus index.
        let (bin, in_radius) = cast::quantize_round_index_select(err / step, self.radius);
        // Checked narrowing: a correction that overflows f32 escapes instead
        // of silently reconstructing ±∞. (When `in_radius` is false `bin` is
        // garbage and `recon` with it — harmless, the select discards both.)
        let (recon, finite) = cast::f64_to_f32_select(pred + step * f64::from(bin));
        // Exactness check in decoder arithmetic: reject on any rounding slip.
        // A NaN difference compares false, so it also escapes.
        let in_bound = (f64::from(recon) - f64::from(value)).abs() <= self.eb;
        // Non-short-circuiting `&`: all three flags are already computed, a
        // single combined flag keeps the path branch-free.
        let ok = in_radius & finite & in_bound;
        // Error-bound invariant at the encode boundary: every emitted bin's
        // reconstruction is within eb of the input (xtask rule R4).
        debug_assert!(
            !ok || (f64::from(recon) - f64::from(value)).abs() <= self.eb,
            "quantize emitted a bin violating |x - recon| <= eb"
        );
        // Per-field selects (not a branch over two tuples) so each lowers to
        // a conditional move feeding an unconditional store in the caller.
        let symbol = if ok { bin_to_symbol(bin) } else { ESCAPE };
        let out = if ok { recon } else { value };
        (symbol, out, ok)
    }

    /// Decoder-side reconstruction for a non-escape symbol.
    #[inline]
    pub fn recover(&self, symbol: u32, pred: f64) -> f32 {
        debug_assert_ne!(symbol, ESCAPE);
        let bin = symbol_to_bin(symbol);
        // Error-bound invariant at the decode boundary: a well-formed stream
        // never carries a bin beyond the quantizer radius (xtask rule R4).
        debug_assert!(
            bin.unsigned_abs() <= self.radius.unsigned_abs(),
            "decoded bin {bin} exceeds quantizer radius {}",
            self.radius
        );
        // Checked narrowing: encoders never emit a bin whose reconstruction
        // overflows f32 (quantize escapes first), so an overflow here means a
        // corrupt stream — surface NaN rather than a silent ±∞.
        cast::f64_to_f32_checked(pred + self.eb_step() * f64::from(bin)).unwrap_or(f32::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_gives_zero_bin() {
        let q = LinearQuantizer::new(0.1);
        match q.quantize(5.0, 5.0) {
            Quantized::Bin { symbol, recon } => {
                assert_eq!(symbol, bin_to_symbol(0));
                assert_eq!(recon, 5.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bound_holds_across_error_magnitudes() {
        let q = LinearQuantizer::new(0.01);
        let pred = 1.0f64;
        let mut escapes = 0usize;
        for i in -5000..5000 {
            let value = (pred + i as f64 * 0.0137) as f32;
            match q.quantize(value, pred) {
                Quantized::Bin { symbol, recon } => {
                    assert!(
                        ((recon as f64) - (value as f64)).abs() <= 0.01,
                        "bound violated at {value}"
                    );
                    // Decoder path must agree bit-for-bit.
                    assert_eq!(q.recover(symbol, pred), recon);
                }
                // Exact half-step boundaries may conservatively escape when
                // f32 rounding nudges the reconstruction past the bound;
                // that is correct behaviour but must stay rare.
                Quantized::Escape => escapes += 1,
            }
        }
        assert!(escapes < 100, "{escapes} escapes out of 10000");
    }

    #[test]
    fn huge_error_escapes() {
        let q = LinearQuantizer::new(1e-6);
        assert_eq!(q.quantize(1e9, 0.0), Quantized::Escape);
    }

    #[test]
    fn nan_input_escapes() {
        let q = LinearQuantizer::new(0.1);
        assert_eq!(q.quantize(f32::NAN, 0.0), Quantized::Escape);
    }

    #[test]
    fn nonfinite_prediction_escapes() {
        let q = LinearQuantizer::new(0.1);
        // A wild prediction whose correction would overflow f32.
        assert_eq!(q.quantize(1.0, f64::MAX), Quantized::Escape);
    }

    #[test]
    fn small_radius_escapes_sooner() {
        let q = LinearQuantizer::with_radius(0.5, 4);
        assert!(matches!(q.quantize(3.9, 0.0), Quantized::Bin { .. }));
        assert_eq!(q.quantize(20.0, 0.0), Quantized::Escape);
    }

    #[test]
    fn max_symbol_covers_radius() {
        let q = LinearQuantizer::with_radius(0.5, 4);
        // All emittable symbols fit below max_symbol()+1.
        for v in [-4.0f32, -2.0, 0.0, 2.0, 4.0] {
            if let Quantized::Bin { symbol, .. } = q.quantize(v, 0.0) {
                assert!(symbol <= q.max_symbol());
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_eb() {
        LinearQuantizer::new(-1.0);
    }

    #[test]
    fn select_form_is_decision_identical() {
        // quantize_select must agree with quantize on every input, including
        // the escape contract: symbol == ESCAPE and recon bit-equal to the
        // input value, so stores through the select path are no-ops there.
        let quantizers = [
            LinearQuantizer::new(1e-3),
            LinearQuantizer::new(1e-6),
            LinearQuantizer::with_radius(0.5, 4),
        ];
        let mut state = 0x5151_d00d_cafe_f00du64;
        let mut probes: Vec<(f32, f64)> = vec![
            (f32::NAN, 0.0),
            (1.0, f64::MAX),
            (1e9, 0.0),
            (0.0, 0.0),
            (-0.0, 0.0),
            (f32::INFINITY, 1.0),
        ];
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (f64::from(cliz_grid::cast::low_u32(state >> 32)) / 4096.0 - 524288.0) as f32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = f64::from(cliz_grid::cast::low_u32(state >> 32)) / 4096.0 - 524288.0;
            probes.push((v, p));
            probes.push((v, f64::from(v) + p / 1e7));
        }
        for q in &quantizers {
            for &(value, pred) in &probes {
                let (sym, recon, ok) = q.quantize_select(value, pred);
                match q.quantize(value, pred) {
                    Quantized::Bin { symbol, recon: r } => {
                        assert!(ok, "value {value} pred {pred}");
                        assert_eq!(sym, symbol);
                        assert_eq!(recon.to_bits(), r.to_bits());
                    }
                    Quantized::Escape => {
                        assert!(!ok, "value {value} pred {pred}");
                        assert_eq!(sym, ESCAPE);
                        assert_eq!(recon.to_bits(), value.to_bits());
                    }
                }
            }
        }
    }
}
