//! Quantization-bin classification (Sec. VI-E).
//!
//! Topography leaves two patterns in the bin field at each *horizontal
//! position* (lat × lon coordinate, aggregated over time/height slices):
//!
//! * **shifting** — the position's bins peak at a nonzero value; with `j = 1`
//!   CliZ records a per-position shift in {−1, 0, +1} and recenters the peak
//!   at bin 0;
//! * **dispersion** — no bin at the position reaches relative frequency
//!   `λ = 0.4` (Theorem 2); such positions get their own Huffman tree.
//!
//! The per-position marker has `(2j+1)(k+1) = 6` states and is stored
//! base-6-packed (≈2.64 bits/position, matching the paper's `log2 6` cost).
//! Markers depend only on terrain, so one map is shared across heights and
//! timesteps (Sec. VII-C3).

use crate::symbol::{bin_to_symbol, symbol_to_bin, ESCAPE};
use cliz_grid::cast;

/// Histogram half-width used to find per-position modes. Bins beyond ±8 are
/// lumped together; a position whose true mode lies outside this window is
/// necessarily dispersed, so the classification is unaffected.
const HIST_HALF: i32 = 8;
const HIST_W: usize = 2 * (HIST_HALF as usize) + 1;

/// Classification tuning.
#[derive(Clone, Copy, Debug)]
pub struct ClassifySpec {
    /// Dispersion threshold: a position is "peaked" when its dominant bin's
    /// relative frequency exceeds `lambda`.
    pub lambda: f64,
    /// Maximum |shift| (the paper's `j`; more than 1 was found not to pay).
    pub max_shift: i32,
    /// Enables the shifting half of the scheme.
    pub shift_enabled: bool,
}

impl Default for ClassifySpec {
    fn default() -> Self {
        Self {
            lambda: optimal_lambda(),
            max_shift: 1,
            shift_enabled: true,
        }
    }
}

/// The Theorem 2 threshold: λ must exceed 0.4 ≥ (3−√5)/2 for the peaked
/// position's dominant bin to be guaranteed cheapest in its Huffman tree
/// under both merge situations analysed in the proof.
pub const fn optimal_lambda() -> f64 {
    0.4
}

/// Per-horizontal-position classification result.
#[derive(Clone, Debug, PartialEq)]
pub struct Classification {
    /// Horizontal plane size (product of the last two dims).
    pub h_len: usize,
    /// Per-position bin shift in `[-max_shift, max_shift]`.
    pub shifts: Vec<i8>,
    /// Per-position Huffman group: 0 = peaked, 1 = dispersed.
    pub groups: Vec<u8>,
}

impl Classification {
    /// Neutral classification (no shifts, everything in group 0).
    pub fn identity(h_len: usize) -> Self {
        Self {
            h_len,
            shifts: vec![0; h_len],
            groups: vec![0; h_len],
        }
    }

    #[inline]
    pub fn position_of(&self, linear_idx: usize) -> usize {
        linear_idx % self.h_len
    }

    #[inline]
    pub fn group_of(&self, linear_idx: usize) -> u8 {
        self.groups[linear_idx % self.h_len]
    }

    #[inline]
    pub fn shift_of(&self, linear_idx: usize) -> i8 {
        self.shifts[linear_idx % self.h_len]
    }

    /// Expands the per-position groups into a per-element group sequence for
    /// `multi_encode` (in `cliz-entropy`), honouring the encode-order convention
    /// (raster order, masked elements skipped).
    ///
    /// Walks plane by plane so the `% h_len` position math and the mask
    /// `Option` test are hoisted out of the per-element loop.
    pub fn group_sequence(&self, total_len: usize, mask: Option<&[bool]>) -> Vec<u8> {
        let mut out = Vec::with_capacity(total_len);
        match mask {
            None => {
                while out.len() + self.h_len <= total_len {
                    out.extend_from_slice(&self.groups);
                }
                let rem = total_len - out.len();
                out.extend_from_slice(&self.groups[..rem.min(self.groups.len())]);
            }
            Some(m) => {
                for mplane in m.chunks(self.h_len).take(total_len.div_ceil(self.h_len)) {
                    for (&g, &keep) in self.groups.iter().zip(mplane) {
                        if keep {
                            out.push(g);
                        }
                    }
                }
            }
        }
        out
    }

    /// True when classification would change nothing (lets the pipeline fall
    /// back to single-tree Huffman with zero marker cost).
    pub fn is_trivial(&self) -> bool {
        self.shifts.iter().all(|&s| s == 0) && self.groups.iter().all(|&g| g == 0)
    }

    /// Packs markers base-6: digit = `(shift + 1) * 2 + group`, 11 digits per
    /// 29-bit word (6^11 < 2^29), ≈2.64 bits/position.
    pub fn marker_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.h_len * 3 / 8 + 8);
        out.extend_from_slice(&(self.h_len as u64).to_le_bytes());
        let mut word: u32 = 0;
        let mut digits = 0u32;
        for p in 0..self.h_len {
            // shift ∈ [-1, 1] by construction, so shift + 1 is non-negative.
            let digit = (i32::from(self.shifts[p]) + 1).unsigned_abs() * 2
                + u32::from(self.groups[p]);
            debug_assert!(digit < 6);
            word = word * 6 + digit;
            digits += 1;
            if digits == 11 {
                out.extend_from_slice(&word.to_le_bytes());
                word = 0;
                digits = 0;
            }
        }
        if digits > 0 {
            // Left-pad the final group to 11 digits so unpacking is uniform.
            for _ in digits..11 {
                word *= 6;
            }
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Inverse of [`Classification::marker_bytes`].
    pub fn from_marker_bytes(bytes: &[u8]) -> Option<Self> {
        let h_len = cast::to_usize_checked(cast::u64_le(bytes)?)?;
        let n_words = h_len.div_ceil(11);
        // Checked arithmetic: a corrupt h_len must not overflow the length
        // bound below (and the allocations stay behind this check).
        if bytes.len() < n_words.checked_mul(4)?.checked_add(8)? {
            return None;
        }
        let mut shifts = Vec::with_capacity(h_len);
        let mut groups = Vec::with_capacity(h_len);
        for w in 0..n_words {
            let off = 8 + w * 4;
            let mut word = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?);
            let mut digits = [0u32; 11];
            for d in (0..11).rev() {
                digits[d] = word % 6;
                word /= 6;
            }
            for (d, &digit) in digits.iter().enumerate() {
                let p = w * 11 + d;
                if p >= h_len {
                    break;
                }
                // digit < 6, so digit/2 ∈ {0, 1, 2} and the conversions hold.
                shifts.push(cast::to_i8_checked(digit / 2)? - 1);
                groups.push(cast::low_u8(digit % 2));
            }
        }
        Some(Self {
            h_len,
            shifts,
            groups,
        })
    }
}

/// Classifies a raster-order symbol grid. `h_len` is the horizontal plane
/// size; element `i` belongs to position `i % h_len`. Masked elements and
/// escapes are excluded from histograms.
pub fn classify(
    symbols: &[u32],
    h_len: usize,
    mask: Option<&[bool]>,
    spec: ClassifySpec,
) -> Classification {
    assert!(h_len > 0 && symbols.len() % h_len == 0, "bad h_len");
    if let Some(m) = mask {
        assert_eq!(m.len(), symbols.len());
    }

    // Flat per-position histograms over bins in [-HIST_HALF, HIST_HALF].
    // Plane-by-plane chunking replaces the per-element `i % h_len` and
    // hoists the mask `Option` test out of the inner loop.
    let mut hist = vec![0u32; h_len * HIST_W];
    let mut totals = vec![0u32; h_len];
    {
        let mut tally = |p: usize, s: u32| {
            totals[p] += 1;
            let bin = symbol_to_bin(s);
            if bin.abs() <= HIST_HALF {
                // In range by the check above, so the conversion never fails.
                if let Some(off) = cast::to_usize_checked(bin + HIST_HALF) {
                    hist[p * HIST_W + off] += 1;
                }
            }
        };
        match mask {
            None => {
                for plane in symbols.chunks(h_len) {
                    for (p, &s) in plane.iter().enumerate() {
                        if s != ESCAPE {
                            tally(p, s);
                        }
                    }
                }
            }
            Some(m) => {
                for (plane, mplane) in symbols.chunks(h_len).zip(m.chunks(h_len)) {
                    for (p, (&s, &keep)) in plane.iter().zip(mplane).enumerate() {
                        if keep && s != ESCAPE {
                            tally(p, s);
                        }
                    }
                }
            }
        }
    }

    let mut shifts = vec![0i8; h_len];
    let mut groups = vec![0u8; h_len];
    for p in 0..h_len {
        let total = totals[p];
        if total == 0 {
            // Fully masked / all-escape column: neutral markers.
            continue;
        }
        let row = &hist[p * HIST_W..(p + 1) * HIST_W];
        let Some((mode_off, &mode_cnt)) = row.iter().enumerate().max_by_key(|&(_, &c)| c) else {
            continue; // unreachable: HIST_W > 0
        };
        // mode_off < HIST_W = 17, so the i32 conversion cannot fail.
        let mode_bin = cast::to_i32_checked(mode_off).unwrap_or(i32::MAX) - HIST_HALF;
        let peak_frac = f64::from(mode_cnt) / f64::from(total);

        if spec.shift_enabled && mode_bin != 0 && mode_bin.abs() <= spec.max_shift {
            shifts[p] = cast::to_i8_checked(mode_bin).unwrap_or(0);
        }
        // Dispersion test uses the peak *after* shifting, which is the same
        // count — shifting relocates the mode to 0 without changing its mass.
        groups[p] = u8::from(peak_frac <= spec.lambda);
    }

    Classification {
        h_len,
        shifts,
        groups,
    }
}

/// Applies per-position shifts to a symbol grid in place (encode side).
/// Escapes and masked elements pass through untouched.
pub fn apply_shifts(symbols: &mut [u32], class: &Classification, mask: Option<&[bool]>) {
    transform_shifts(symbols, class, mask, false);
}

/// Inverse of [`apply_shifts`] (decode side).
pub fn unapply_shifts(symbols: &mut [u32], class: &Classification, mask: Option<&[bool]>) {
    transform_shifts(symbols, class, mask, true);
}

fn transform_shifts(
    symbols: &mut [u32],
    class: &Classification,
    mask: Option<&[bool]>,
    invert: bool,
) {
    // Sign instead of a per-element `invert` branch; plane chunks instead of
    // the per-element `i % h_len`; the mask `Option` resolved once.
    let sgn: i32 = if invert { 1 } else { -1 };
    match mask {
        None => {
            for plane in symbols.chunks_mut(class.h_len) {
                for (s, &shift) in plane.iter_mut().zip(&class.shifts) {
                    shift_one(s, shift, sgn);
                }
            }
        }
        Some(m) => {
            for (plane, mplane) in symbols.chunks_mut(class.h_len).zip(m.chunks(class.h_len)) {
                for ((s, &shift), &keep) in plane.iter_mut().zip(&class.shifts).zip(mplane) {
                    if keep {
                        shift_one(s, shift, sgn);
                    }
                }
            }
        }
    }
}

#[inline]
fn shift_one(s: &mut u32, shift: i8, sgn: i32) {
    if *s == ESCAPE || shift == 0 {
        return;
    }
    let new_bin = symbol_to_bin(*s) + sgn * i32::from(shift);
    *s = bin_to_symbol(new_bin);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClassifySpec {
        ClassifySpec::default()
    }

    #[test]
    fn lambda_satisfies_theorem2_constraints() {
        let golden = (3.0 - 5.0f64.sqrt()) / 2.0; // ≈ 0.381966
        assert!(optimal_lambda() > golden);
        assert!(optimal_lambda() >= 0.4);
    }

    #[test]
    fn shifted_column_detected_and_recentred() {
        // 2 positions × 10 slices: position 0 peaks at bin +1, position 1 at 0.
        let h_len = 2;
        let mut symbols = Vec::new();
        for _slice in 0..10 {
            symbols.push(bin_to_symbol(1)); // position 0
            symbols.push(bin_to_symbol(0)); // position 1
        }
        let class = classify(&symbols, h_len, None, spec());
        assert_eq!(class.shifts, vec![1, 0]);
        assert_eq!(class.groups, vec![0, 0]); // both sharply peaked

        let mut shifted = symbols.clone();
        apply_shifts(&mut shifted, &class, None);
        // Position 0's bins all became 0.
        for slice in 0..10 {
            assert_eq!(symbol_to_bin(shifted[slice * 2]), 0);
        }
        unapply_shifts(&mut shifted, &class, None);
        assert_eq!(shifted, symbols);
    }

    #[test]
    fn dispersed_column_goes_to_group1() {
        // Position 0: uniform over 5 bins (peak frac 0.2 < 0.4) -> dispersed.
        // Position 1: all zeros -> peaked.
        let h_len = 2;
        let mut symbols = Vec::new();
        for slice in 0..10 {
            symbols.push(bin_to_symbol((slice % 5) as i32 - 2));
            symbols.push(bin_to_symbol(0));
        }
        let class = classify(&symbols, h_len, None, spec());
        assert_eq!(class.groups, vec![1, 0]);
    }

    #[test]
    fn large_mode_not_shifted_but_dispersed_check_still_runs() {
        // Mode at +5 exceeds j=1: no shift recorded.
        let h_len = 1;
        let symbols: Vec<u32> = (0..10).map(|_| bin_to_symbol(5)).collect();
        let class = classify(&symbols, h_len, None, spec());
        assert_eq!(class.shifts, vec![0]);
        assert_eq!(class.groups, vec![0]); // still sharply peaked
    }

    #[test]
    fn escapes_and_mask_excluded() {
        let h_len = 1;
        // 3 escapes + 2 masked(-1 bins) + 5 bins of +1 => mode +1 from 5 valid.
        let symbols = vec![
            ESCAPE,
            ESCAPE,
            ESCAPE,
            bin_to_symbol(-1),
            bin_to_symbol(-1),
            bin_to_symbol(1),
            bin_to_symbol(1),
            bin_to_symbol(1),
            bin_to_symbol(1),
            bin_to_symbol(1),
        ];
        let mask = vec![true, true, true, false, false, true, true, true, true, true];
        let class = classify(&symbols, h_len, Some(&mask), spec());
        assert_eq!(class.shifts, vec![1]);
        let mut shifted = symbols.clone();
        apply_shifts(&mut shifted, &class, Some(&mask));
        assert_eq!(shifted[0], ESCAPE); // escapes untouched
        assert_eq!(shifted[3], bin_to_symbol(-1)); // masked untouched
        assert_eq!(symbol_to_bin(shifted[5]), 0);
        unapply_shifts(&mut shifted, &class, Some(&mask));
        assert_eq!(shifted, symbols);
    }

    #[test]
    fn fully_masked_position_neutral() {
        let h_len = 2;
        let symbols: Vec<u32> = (0..8)
            .map(|i| if i % 2 == 0 { bin_to_symbol(3) } else { bin_to_symbol(0) })
            .collect();
        let mask = vec![false, true, false, true, false, true, false, true];
        let class = classify(&symbols, h_len, Some(&mask), spec());
        assert_eq!(class.shifts[0], 0);
        assert_eq!(class.groups[0], 0);
    }

    #[test]
    fn marker_roundtrip() {
        for h_len in [1usize, 5, 11, 12, 23, 1000] {
            let shifts: Vec<i8> = (0..h_len).map(|p| (p % 3) as i8 - 1).collect();
            let groups: Vec<u8> = (0..h_len).map(|p| (p % 2) as u8).collect();
            let class = Classification {
                h_len,
                shifts,
                groups,
            };
            let bytes = class.marker_bytes();
            // ~2.9 bits/position + 8-byte header.
            assert!(bytes.len() <= 8 + (h_len.div_ceil(11)) * 4);
            let back = Classification::from_marker_bytes(&bytes).unwrap();
            assert_eq!(back, class);
        }
    }

    #[test]
    fn group_sequence_skips_masked() {
        let class = Classification {
            h_len: 2,
            shifts: vec![0, 0],
            groups: vec![0, 1],
        };
        let mask = vec![true, false, true, true];
        let seq = class.group_sequence(4, Some(&mask));
        assert_eq!(seq, vec![0, 0, 1]);
    }

    #[test]
    fn identity_is_trivial() {
        assert!(Classification::identity(7).is_trivial());
    }

    #[test]
    fn truncated_markers_rejected() {
        let class = Classification::identity(100);
        let bytes = class.marker_bytes();
        assert!(Classification::from_marker_bytes(&bytes[..10]).is_none());
    }
}
