//! User-facing error-bound specification.

/// How the user expresses the tolerable pointwise error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|x − x̂| ≤ eb`.
    Abs(f64),
    /// Value-range-relative bound: `|x − x̂| ≤ ratio × (max − min)`, the form
    /// used throughout the paper's evaluation ("relative error boundary").
    Rel(f64),
}

impl ErrorBound {
    /// Resolves to an absolute bound given the data's finite value range.
    ///
    /// A degenerate range (constant data) resolves a relative bound to a tiny
    /// positive epsilon so the quantizer still works and the guarantee is
    /// trivially met.
    pub fn resolve(self, min: f32, max: f32) -> f64 {
        match self {
            ErrorBound::Abs(eb) => {
                assert!(eb > 0.0, "absolute error bound must be positive");
                eb
            }
            ErrorBound::Rel(ratio) => {
                assert!(ratio > 0.0, "relative error bound must be positive");
                let range = (max as f64 - min as f64).abs();
                if range > 0.0 {
                    ratio * range
                } else {
                    f64::EPSILON
                }
            }
        }
    }

    /// Paper-style label ("rel 1e-3", "abs 0.5") for experiment tables.
    pub fn label(&self) -> String {
        match self {
            ErrorBound::Abs(eb) => format!("abs {eb:.0e}"),
            ErrorBound::Rel(r) => format!("rel {r:.0e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_passthrough() {
        assert_eq!(ErrorBound::Abs(0.5).resolve(-1.0, 1.0), 0.5);
    }

    #[test]
    fn rel_scales_by_range() {
        let eb = ErrorBound::Rel(1e-2).resolve(-3.0, 7.0);
        assert!((eb - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rel_on_constant_data_is_positive() {
        let eb = ErrorBound::Rel(1e-3).resolve(5.0, 5.0);
        assert!(eb > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        ErrorBound::Abs(0.0).resolve(0.0, 1.0);
    }

    #[test]
    fn labels() {
        assert_eq!(ErrorBound::Rel(1e-3).label(), "rel 1e-3");
        assert_eq!(ErrorBound::Abs(2.0).label(), "abs 2e0");
    }
}
