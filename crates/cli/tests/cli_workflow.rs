//! End-to-end CLI workflow: gen → info → tune → compress → decompress → eval,
//! driven through the same `run()` entry point as the binary.

use std::path::PathBuf;

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cliz_cli_workflow").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_masked_dataset() {
    let dir = workdir("masked");
    let caf = dir.join("ssh.caf").display().to_string();
    let cfg = dir.join("model.clizcfg").display().to_string();
    let cz = dir.join("ssh.cz").display().to_string();
    let out = dir.join("recon.caf").display().to_string();

    cliz_cli::run(&args(&[
        "gen", "ssh", "--dims", "48,40,72", "--seed", "9", "-o", &caf,
    ]))
    .unwrap();
    cliz_cli::run(&args(&["info", &caf])).unwrap();
    cliz_cli::run(&args(&["tune", &caf, "--rate", "0.05", "-o", &cfg])).unwrap();
    cliz_cli::run(&args(&[
        "compress", &caf, "--rel", "1e-3", "--config", &cfg, "-o", &cz,
    ]))
    .unwrap();
    cliz_cli::run(&args(&["decompress", &cz, "--mask-from", &caf, "-o", &out])).unwrap();
    cliz_cli::run(&args(&["eval", &caf, &out])).unwrap();

    // Verify the reconstruction numerically, independent of CLI output.
    let orig = cliz_store::load(std::path::Path::new(&caf)).unwrap();
    let recon = cliz_store::load(std::path::Path::new(&out)).unwrap();
    let (mn, mx) = cliz::valid_min_max(&orig.data, orig.mask.as_ref());
    let eb = 1e-3 * (mx - mn) as f64;
    let max_err = cliz::metrics::max_abs_error(
        orig.data.as_slice(),
        recon.data.as_slice(),
        orig.mask.as_ref(),
    );
    assert!(max_err <= eb * (1.0 + 1e-9), "{max_err} > {eb}");
    // Compression actually happened.
    let packed = std::fs::metadata(&cz).unwrap().len();
    assert!(packed < (orig.data.len() * 4) as u64 / 2);
    // Metadata travelled through the wrapper.
    assert_eq!(recon.name, "SSH");
    assert_eq!(recon.attr("period"), Some("12"));
}

#[test]
fn masked_stream_requires_mask() {
    let dir = workdir("needs_mask");
    let caf = dir.join("t.caf").display().to_string();
    let cz = dir.join("t.cz").display().to_string();
    let out = dir.join("o.caf").display().to_string();
    cliz_cli::run(&args(&["gen", "tsfc", "--dims", "24,20,24", "-o", &caf])).unwrap();
    cliz_cli::run(&args(&["compress", &caf, "-o", &cz])).unwrap();
    let err = cliz_cli::run(&args(&["decompress", &cz, "-o", &out])).unwrap_err();
    assert!(err.message.contains("mask"), "{}", err.message);
}

#[test]
fn baseline_compressors_via_cli() {
    let dir = workdir("baselines");
    let caf = dir.join("h.caf").display().to_string();
    cliz_cli::run(&args(&[
        "gen", "hurricane-t", "--dims", "8,32,32", "-o", &caf,
    ]))
    .unwrap();
    for codec in ["sz3", "sz2", "zfp", "sperr", "qoz"] {
        let cz = dir.join(format!("h_{codec}.cz")).display().to_string();
        let out = dir.join(format!("h_{codec}.caf")).display().to_string();
        cliz_cli::run(&args(&[
            "compress", &caf, "--compressor", codec, "--rel", "1e-2", "-o", &cz,
        ]))
        .unwrap_or_else(|e| panic!("{codec}: {e}"));
        cliz_cli::run(&args(&["decompress", &cz, "-o", &out])).unwrap();
        let orig = cliz_store::load(std::path::Path::new(&caf)).unwrap();
        let recon = cliz_store::load(std::path::Path::new(&out)).unwrap();
        let (mn, mx) = cliz::valid_min_max(&orig.data, None);
        let eb = 1e-2 * (mx - mn) as f64;
        let max_err =
            cliz::metrics::max_abs_error(orig.data.as_slice(), recon.data.as_slice(), None);
        assert!(max_err <= eb * (1.0 + 1e-9), "{codec}: {max_err} > {eb}");
    }
}

#[test]
fn gen_rejects_bad_input() {
    let dir = workdir("bad");
    let caf = dir.join("x.caf").display().to_string();
    assert!(cliz_cli::run(&args(&["gen", "nonsense", "--dims", "4,4,4", "-o", &caf])).is_err());
    assert!(cliz_cli::run(&args(&["gen", "ssh", "--dims", "4", "-o", &caf])).is_err());
    assert!(cliz_cli::run(&args(&["gen", "ssh", "--dims", "a,b,c", "-o", &caf])).is_err());
    assert!(cliz_cli::run(&args(&["frobnicate"])).is_err());
}

#[test]
fn chunked_mode_roundtrips() {
    let dir = workdir("chunked");
    let caf = dir.join("c.caf").display().to_string();
    let cz = dir.join("c.cz").display().to_string();
    let out = dir.join("c_out.caf").display().to_string();
    cliz_cli::run(&args(&["gen", "hurricane-t", "--dims", "16,24,24", "-o", &caf])).unwrap();
    cliz_cli::run(&args(&["compress", &caf, "--chunk", "4", "--rel", "1e-3", "-o", &cz]))
        .unwrap();
    cliz_cli::run(&args(&["decompress", &cz, "-o", &out])).unwrap();
    let orig = cliz_store::load(std::path::Path::new(&caf)).unwrap();
    let recon = cliz_store::load(std::path::Path::new(&out)).unwrap();
    let (mn, mx) = cliz::valid_min_max(&orig.data, None);
    let eb = 1e-3 * (mx - mn) as f64;
    let max_err =
        cliz::metrics::max_abs_error(orig.data.as_slice(), recon.data.as_slice(), None);
    assert!(max_err <= eb * (1.0 + 1e-9));
    // --chunk with a baseline compressor is refused.
    assert!(cliz_cli::run(&args(&[
        "compress", &caf, "--chunk", "4", "--compressor", "sz3", "-o", &cz
    ]))
    .is_err());
}

#[test]
fn slab_extraction_from_chunked_stream() {
    let dir = workdir("slab");
    let caf = dir.join("s.caf").display().to_string();
    let cz = dir.join("s.cz").display().to_string();
    let slab = dir.join("slab2.caf").display().to_string();
    cliz_cli::run(&args(&["gen", "hurricane-t", "--dims", "12,20,20", "-o", &caf])).unwrap();
    cliz_cli::run(&args(&["compress", &caf, "--chunk", "3", "-o", &cz])).unwrap();
    cliz_cli::run(&args(&["slab", &cz, "--index", "2", "-o", &slab])).unwrap();
    let ds = cliz_store::load(std::path::Path::new(&slab)).unwrap();
    assert_eq!(ds.data.shape().dims(), &[3, 20, 20]);
    assert_eq!(ds.attr("slab_index"), Some("2"));
    // Out-of-range index and non-chunked input are clean errors.
    assert!(cliz_cli::run(&args(&["slab", &cz, "--index", "99", "-o", &slab])).is_err());
    let plain = dir.join("plain.cz").display().to_string();
    cliz_cli::run(&args(&["compress", &caf, "-o", &plain])).unwrap();
    assert!(cliz_cli::run(&args(&["slab", &plain, "--index", "0", "-o", &slab])).is_err());
}

#[test]
fn cross_variable_config_transfer() {
    // The paper's workflow across *variables* of the same ocean model:
    // tune on SSH, compress SALT with the same .clizcfg.
    let dir = workdir("crossvar");
    let ssh = dir.join("ssh.caf").display().to_string();
    let salt = dir.join("salt.caf").display().to_string();
    let cfg = dir.join("ocean.clizcfg").display().to_string();
    let cz = dir.join("salt.cz").display().to_string();
    let out = dir.join("salt_out.caf").display().to_string();
    cliz_cli::run(&args(&["gen", "ssh", "--dims", "32,28,72", "-o", &ssh])).unwrap();
    cliz_cli::run(&args(&["tune", &ssh, "--rate", "0.05", "-o", &cfg])).unwrap();
    // SALT is 4-D; the 3-D SSH permutation does not transfer verbatim, which
    // is exactly why the paper tunes per model *and shape family*. Use a 3-D
    // second variable instead: another member field compressed with the
    // shared config (tsfc has the same [lat, lon, time] layout).
    cliz_cli::run(&args(&["gen", "tsfc", "--dims", "32,28,72", "-o", &salt])).unwrap();
    cliz_cli::run(&args(&["compress", &salt, "--config", &cfg, "--rel", "1e-3", "-o", &cz]))
        .unwrap();
    cliz_cli::run(&args(&["decompress", &cz, "--mask-from", &salt, "-o", &out])).unwrap();
    let orig = cliz_store::load(std::path::Path::new(&salt)).unwrap();
    let recon = cliz_store::load(std::path::Path::new(&out)).unwrap();
    let (mn, mx) = cliz::valid_min_max(&orig.data, orig.mask.as_ref());
    let eb = 1e-3 * (mx - mn) as f64;
    let max_err = cliz::metrics::max_abs_error(
        orig.data.as_slice(),
        recon.data.as_slice(),
        orig.mask.as_ref(),
    );
    assert!(max_err <= eb * (1.0 + 1e-9));
}

#[test]
fn abs_and_rel_are_exclusive() {
    let dir = workdir("excl");
    let caf = dir.join("x.caf").display().to_string();
    let cz = dir.join("x.cz").display().to_string();
    cliz_cli::run(&args(&["gen", "hurricane-t", "--dims", "4,16,16", "-o", &caf])).unwrap();
    assert!(cliz_cli::run(&args(&[
        "compress", &caf, "--abs", "0.1", "--rel", "1e-3", "-o", &cz
    ]))
    .is_err());
    // Absolute bound alone works.
    cliz_cli::run(&args(&["compress", &caf, "--abs", "0.1", "-o", &cz])).unwrap();
}

// ---------------------------------------------------------------------------
// CZF1 golden fixture: the CLI wrapper format, pinned byte-for-byte (the
// other eleven container formats live in the facade-level corpus under
// `tests/golden/`; see `tests/golden_corpus.rs` for the invariants).
// ---------------------------------------------------------------------------

/// The fixed fixture contents: every CZF1 field populated, deterministic
/// payload bytes standing in for an inner container.
fn golden_czfile() -> cliz_cli::czfile::CzFile {
    cliz_cli::czfile::CzFile {
        codec: cliz_cli::czfile::Codec::ClizChunked,
        name: "T2m".into(),
        dim_names: vec!["lat".into(), "lon".into()],
        attrs: vec![("units".into(), "K".into()), ("period".into(), "12".into())],
        masked: false,
        payload: (0..256u32).map(|i| (i.wrapping_mul(97) >> 3) as u8).collect(),
    }
}

#[test]
fn czf1_golden_fixture_is_byte_stable_and_loads() {
    let committed: &[u8] = include_bytes!("golden/czf1.cz");
    let dir = workdir("czf1_golden");
    let path = dir.join("fresh.cz");
    cliz_cli::czfile::save(&path, &golden_czfile()).unwrap();
    let fresh = std::fs::read(&path).unwrap();
    assert_eq!(
        fresh, committed,
        "CZF1 container drifted — run czf1_regenerate_golden for an intentional change"
    );
    // The committed bytes (written by a past build) still load field-exact.
    std::fs::write(&path, committed).unwrap();
    let back = cliz_cli::czfile::load(&path).unwrap();
    assert_eq!(back, golden_czfile());
}

/// Rewrites `crates/cli/tests/golden/czf1.cz`; run only after an intentional
/// CZF1 format change.
#[test]
#[ignore]
fn czf1_regenerate_golden() {
    let dir = std::path::Path::new(file!())
        .parent()
        .expect("test file has a parent dir")
        .join("golden");
    std::fs::create_dir_all(&dir).unwrap();
    cliz_cli::czfile::save(&dir.join("czf1.cz"), &golden_czfile()).unwrap();
}

#[test]
fn serve_and_fetch_mirror_local_query() {
    let dir = workdir("serve_fetch");
    let caf = dir.join("t.caf").display().to_string();
    let czs = dir.join("t.czs").display().to_string();
    let fetched = dir.join("fetched.caf").display().to_string();
    let queried = dir.join("queried.caf").display().to_string();
    let port_file = dir.join("port").display().to_string();
    cliz_cli::run(&args(&["gen", "hurricane-t", "--dims", "24,16,16", "-o", &caf])).unwrap();
    cliz_cli::run(&args(&[
        "pack-store", &caf, "--chunk", "4", "--rel", "1e-3", "-o", &czs,
    ]))
    .unwrap();

    // `cliz serve` never returns; run it on a throwaway thread and learn the
    // ephemeral port from --port-file (the documented scripting idiom). The
    // thread dies with the test process.
    let czs_bg = czs.clone();
    let pf_bg = port_file.clone();
    std::thread::spawn(move || {
        let _ = cliz_cli::run(&args(&[
            "serve", &czs_bg, "--addr", "127.0.0.1:0", "--port-file", &pf_bg,
        ]));
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if !s.is_empty() {
                break s;
            }
        }
        assert!(std::time::Instant::now() < deadline, "serve never wrote the port file");
        std::thread::sleep(std::time::Duration::from_millis(20));
    };

    // A remote fetch writes byte-for-byte what a local query writes.
    let spec = "3:14,2:9,:";
    cliz_cli::run(&args(&["fetch", &addr, "--region", spec, "-o", &fetched])).unwrap();
    cliz_cli::run(&args(&["query", &czs, "--region", spec, "--stats", "-o", &queried]))
        .unwrap();
    let a = std::fs::read(&fetched).unwrap();
    let b = std::fs::read(&queried).unwrap();
    assert_eq!(a, b, "fetch -o and query -o diverged");

    // --stats against the live server is accepted, and bad input is a clean
    // client-side error, not a wedged connection.
    cliz_cli::run(&args(&["fetch", &addr, "--region", spec, "--stats"])).unwrap();
    assert!(cliz_cli::run(&args(&["fetch", &addr, "--region", "not-a-region"])).is_err());
    assert!(cliz_cli::run(&args(&["fetch", "127.0.0.1:1", "--region", spec])).is_err());
}
