//! `.cz` wrapper: dataset metadata + a codec container, so `decompress`
//! reproduces a complete CAF dataset.

use crate::args::CliError;
use cliz_format::spec::CZF1;
use std::io::{Read, Write};
use std::path::Path;

/// Codec identifiers stored in the wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    Cliz = 0,
    Sz3 = 1,
    Sz2 = 2,
    Zfp = 3,
    Sperr = 4,
    Qoz = 5,
    /// CliZ chunked container (`compress --chunk N`): random slab access.
    ClizChunked = 6,
}

impl Codec {
    pub fn from_name(name: &str) -> Option<Codec> {
        Some(match name.to_ascii_lowercase().as_str() {
            "cliz" => Codec::Cliz,
            "sz3" => Codec::Sz3,
            "sz2" => Codec::Sz2,
            "zfp" => Codec::Zfp,
            "sperr" => Codec::Sperr,
            "qoz" | "qoz1.1" => Codec::Qoz,
            "cliz-chunked" => Codec::ClizChunked,
            _ => return None,
        })
    }

    pub fn from_id(id: u8) -> Option<Codec> {
        Some(match id {
            0 => Codec::Cliz,
            1 => Codec::Sz3,
            2 => Codec::Sz2,
            3 => Codec::Zfp,
            4 => Codec::Sperr,
            5 => Codec::Qoz,
            6 => Codec::ClizChunked,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            Codec::Cliz => "cliz",
            Codec::Sz3 => "sz3",
            Codec::Sz2 => "sz2",
            Codec::Zfp => "zfp",
            Codec::Sperr => "sperr",
            Codec::Qoz => "qoz",
            Codec::ClizChunked => "cliz-chunked",
        }
    }
}

/// Everything a `.cz` file carries.
#[derive(Clone, Debug, PartialEq)]
pub struct CzFile {
    pub codec: Codec,
    pub name: String,
    pub dim_names: Vec<String>,
    pub attrs: Vec<(String, String)>,
    /// Whether the stream was compressed against a mask (decompression then
    /// needs `--mask-from`).
    pub masked: bool,
    /// The codec's own container bytes.
    pub payload: Vec<u8>,
}

fn write_string(w: &mut impl Write, s: &str) -> std::io::Result<()> {
    w.write_all(&(s.len() as u16).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_string(r: &mut impl Read) -> Result<String, CliError> {
    let mut len = [0u8; 2];
    r.read_exact(&mut len)?;
    let mut buf = vec![0u8; u16::from_le_bytes(len) as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| CliError::new("cz: non-UTF8 string"))
}

pub fn save(path: &Path, cz: &CzFile) -> Result<(), CliError> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(&CZF1.magic.to_le_bytes())?;
    w.write_all(&[CZF1.version])?;
    w.write_all(&[cz.codec as u8])?;
    write_string(&mut w, &cz.name)?;
    w.write_all(&[cz.dim_names.len() as u8])?;
    for d in &cz.dim_names {
        write_string(&mut w, d)?;
    }
    w.write_all(&(cz.attrs.len() as u16).to_le_bytes())?;
    for (k, v) in &cz.attrs {
        write_string(&mut w, k)?;
        write_string(&mut w, v)?;
    }
    w.write_all(&[u8::from(cz.masked)])?;
    w.write_all(&(cz.payload.len() as u64).to_le_bytes())?;
    w.write_all(&cz.payload)?;
    Ok(())
}

pub fn load(path: &Path) -> Result<CzFile, CliError> {
    let file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = std::io::BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if u32::from_le_bytes(magic) != CZF1.magic {
        return Err(CliError::new("not a .cz file"));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] == 0 || version[0] > CZF1.version {
        return Err(CliError::new(format!(
            "cz: unsupported version {} (this build reads up to {})",
            version[0], CZF1.version
        )));
    }
    let mut codec = [0u8; 1];
    r.read_exact(&mut codec)?;
    let codec = Codec::from_id(codec[0]).ok_or_else(|| CliError::new("cz: unknown codec"))?;
    let name = read_string(&mut r)?;
    let mut ndim = [0u8; 1];
    r.read_exact(&mut ndim)?;
    let mut dim_names = Vec::with_capacity(ndim[0] as usize);
    for _ in 0..ndim[0] {
        dim_names.push(read_string(&mut r)?);
    }
    let mut nattrs = [0u8; 2];
    r.read_exact(&mut nattrs)?;
    let mut attrs = Vec::with_capacity(u16::from_le_bytes(nattrs) as usize);
    for _ in 0..u16::from_le_bytes(nattrs) {
        let k = read_string(&mut r)?;
        let v = read_string(&mut r)?;
        attrs.push((k, v));
    }
    let mut masked = [0u8; 1];
    r.read_exact(&mut masked)?;
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len);
    // A payload cannot be longer than the file it sits in: reject a corrupt
    // length field before allocating for it.
    if len > file_len {
        return Err(CliError::new("cz: payload length exceeds file size"));
    }
    let len = usize::try_from(len).map_err(|_| CliError::new("cz: payload length overflows"))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(CzFile {
        codec,
        name,
        dim_names,
        attrs,
        masked: masked[0] != 0,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_names_roundtrip() {
        for c in [Codec::Cliz, Codec::Sz3, Codec::Sz2, Codec::Zfp, Codec::Sperr, Codec::Qoz] {
            assert_eq!(Codec::from_name(c.name()), Some(c));
            assert_eq!(Codec::from_id(c as u8), Some(c));
        }
        assert_eq!(Codec::from_name("bogus"), None);
        assert_eq!(Codec::from_id(99), None);
    }

    #[test]
    fn file_roundtrip() {
        let cz = CzFile {
            codec: Codec::Cliz,
            name: "SSH".into(),
            dim_names: vec!["lat".into(), "lon".into(), "time".into()],
            attrs: vec![("period".into(), "12".into())],
            masked: true,
            payload: vec![1, 2, 3, 4, 5],
        };
        let dir = std::env::temp_dir().join("cliz_cz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cz");
        save(&path, &cz).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, cz);
    }

    #[test]
    fn future_version_rejected() {
        let cz = CzFile {
            codec: Codec::Cliz,
            name: "SSH".into(),
            dim_names: vec![],
            attrs: vec![],
            masked: false,
            payload: vec![1, 2, 3],
        };
        let dir = std::env::temp_dir().join("cliz_cz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future.cz");
        save(&path, &cz).unwrap();
        let saved = std::fs::read(&path).unwrap();
        // Zeroed and future version bytes both refuse cleanly.
        for v in [0u8, 0xEE] {
            let mut bytes = saved.clone();
            bytes[4] = v; // version byte sits right after the magic
            std::fs::write(&path, &bytes).unwrap();
            let err = load(&path).unwrap_err();
            assert!(err.to_string().contains("unsupported version"), "{err}");
        }
    }

    #[test]
    fn implausible_payload_length_rejected() {
        // Valid header claiming a payload far larger than the file itself:
        // must fail cleanly without attempting the allocation.
        let mut bytes = CZF1.magic.to_le_bytes().to_vec();
        bytes.push(CZF1.version);
        bytes.push(0); // codec = cliz
        bytes.extend_from_slice(&0u16.to_le_bytes()); // empty name
        bytes.push(0); // no dims
        bytes.extend_from_slice(&0u16.to_le_bytes()); // no attrs
        bytes.push(0); // unmasked
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd payload len
        let dir = std::env::temp_dir().join("cliz_cz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oversized.cz");
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&path).is_err());
    }

    #[test]
    fn garbage_rejected() {
        let dir = std::env::temp_dir().join("cliz_cz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.cz");
        std::fs::write(&path, b"not a cz file at all").unwrap();
        assert!(load(&path).is_err());
    }
}
