//! Command implementations for the `cliz` CLI.
//!
//! ```text
//! cliz gen <ssh|cesm-t|relhum|soilliq|tsfc|hurricane-t> --dims 96,80,360 [--seed N] -o file.caf
//! cliz info <file.caf>
//! cliz tune <file.caf> [--rate 0.01] [--rel 1e-3] -o model.clizcfg
//! cliz compress <file.caf> -o file.cz [--rel 1e-3 | --abs X]
//!               [--config model.clizcfg] [--compressor cliz|sz3|sz2|zfp|sperr|qoz]
//! cliz decompress <file.cz> -o out.caf [--mask-from orig.caf]
//! cliz pack-store <file.caf> -o file.czs --chunk ROWS [--rel 1e-3 | --abs X]
//! cliz query <file.czs> --region 120:240,:,: [-o region.caf]
//! cliz eval <orig.caf> <recon.caf>
//! ```
//!
//! Compressed files are `.cz` wrappers: dataset metadata (name, dim names,
//! attributes, compressor id) plus the codec's own container, so
//! decompression rebuilds a complete CAF dataset. The mask map is *not*
//! embedded (CESM convention: it ships with the dataset); masked streams
//! need `--mask-from`.

pub mod args;
pub mod commands;
pub mod czfile;

pub use args::{CliError, Parsed};

/// Entry point used by `main` and by the integration tests.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv)?;
    match parsed.command.as_str() {
        "gen" => commands::gen(&parsed),
        "info" => commands::info(&parsed),
        "tune" => commands::tune(&parsed),
        "compress" => commands::compress(&parsed),
        "decompress" => commands::decompress(&parsed),
        "slab" => commands::slab(&parsed),
        "pack-store" => commands::pack_store(&parsed),
        "query" => commands::query(&parsed),
        "serve" => commands::serve(&parsed),
        "fetch" => commands::fetch(&parsed),
        "eval" => commands::eval(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(CliError::new(format!(
            "unknown command '{other}'\n{}",
            usage()
        ))),
    }
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "cliz — error-bounded lossy compression for climate datasets

USAGE:
  cliz gen <kind> --dims A,B[,C[,D]] [--seed N] -o file.caf
  cliz info <file.caf>
  cliz tune <file.caf> [--rate 0.01] [--rel 1e-3] -o model.clizcfg
  cliz compress <file.caf> -o file.cz [--rel 1e-3 | --abs X]
                [--config model.clizcfg] [--compressor cliz|sz3|sz2|zfp|sperr|qoz]
                [--chunk ROWS [--threads N]]   (N=0 means all host cores)
  cliz decompress <file.cz> -o out.caf [--mask-from orig.caf] [--threads N]
  cliz slab <file.cz> --index N -o slab.caf [--mask-from orig.caf]
  cliz pack-store <file.caf> -o file.czs --chunk ROWS
                  [--rel 1e-3 | --abs X] [--config model.clizcfg] [--threads N]
  cliz query <file.czs|http://host/store.czs> --region SPEC [-o region.caf]
             [--stats]
  cliz serve <file.czs|http://host/store.czs> [--addr HOST:PORT]
             [--threads N] [--port-file F]
  cliz fetch <host:port> --region SPEC [-o region.caf] [--stats]
  cliz eval <orig.caf> <recon.caf>

REGION SPEC: one range per dimension, comma-separated. Each range is
half-open `start:end`, `:` for the full extent, `start:` / `:end` for
open ends, or a bare index `i` for a single slice. Examples:
  --region 120:240,:,:        times 120..240, whole globe
  --region 0:1,40:80,100:200  one timestep, a lat/lon window
Only the chunks the region intersects are decompressed; `query` reports
how many chunks were decoded and the cache hit rate, and `--stats` adds
backend fetch counts and codec time. Stores can live behind any HTTP
server that honours Range requests (`http://` paths); `cliz serve`
exposes a store over a line protocol that `cliz fetch` speaks.

KINDS: ssh, cesm-t, relhum, soilliq, salt, tsfc, hurricane-t"
}
