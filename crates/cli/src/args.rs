//! Minimal argument parsing (no clap in the offline registry).

use std::collections::BTreeMap;

/// CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError {
    pub message: String,
}

impl CliError {
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

// Deliberately NOT `impl std::error::Error for CliError`: that would make
// the blanket conversion below overlap with core's reflexive `From<T> for T`.
impl<E: std::error::Error> From<E> for CliError {
    fn from(e: E) -> Self {
        CliError::new(e.to_string())
    }
}

/// Options that are presence-only flags: `--stats` takes no value.
const FLAG_KEYS: &[&str] = &["stats"];

/// Parsed command line: a command word, positional arguments,
/// `--key value` options, and presence-only `--flag`s.
#[derive(Debug, Default)]
pub struct Parsed {
    pub command: String,
    pub positionals: Vec<String>,
    pub options: BTreeMap<String, String>,
    pub flags: std::collections::BTreeSet<String>,
}

impl Parsed {
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut it = argv.iter();
        let command = it
            .next()
            .cloned()
            .ok_or_else(|| CliError::new(crate::usage()))?;
        let mut positionals = Vec::new();
        let mut options = BTreeMap::new();
        let mut flags = std::collections::BTreeSet::new();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if FLAG_KEYS.contains(&key) {
                    flags.insert(key.to_string());
                    continue;
                }
                let value = it
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::new(format!("--{key} needs a value")))?;
                options.insert(key.to_string(), value);
            } else if arg == "-o" {
                let value = it
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::new("-o needs a value"))?;
                options.insert("out".to_string(), value);
            } else {
                positionals.push(arg.clone());
            }
        }
        Ok(Self {
            command,
            positionals,
            options,
            flags,
        })
    }

    /// Whether a presence-only flag (e.g. `--stats`) was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    pub fn positional(&self, index: usize, what: &str) -> Result<&str, CliError> {
        self.positionals
            .get(index)
            .map(|s| s.as_str())
            .ok_or_else(|| CliError::new(format!("missing {what}\n{}", crate::usage())))
    }

    pub fn option(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.option(key)
            .ok_or_else(|| CliError::new(format!("missing --{key}")))
    }

    pub fn parse_option<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.option(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("cannot parse --{key} {v}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_positionals_options() {
        let p = Parsed::parse(&sv(&["compress", "in.caf", "-o", "out.cz", "--rel", "1e-3"]))
            .unwrap();
        assert_eq!(p.command, "compress");
        assert_eq!(p.positionals, vec!["in.caf"]);
        assert_eq!(p.option("out"), Some("out.cz"));
        assert_eq!(p.option("rel"), Some("1e-3"));
    }

    #[test]
    fn presence_flags_take_no_value() {
        let p = Parsed::parse(&sv(&["query", "s.czs", "--stats", "--region", "0:4,:"])).unwrap();
        assert!(p.flag("stats"));
        assert_eq!(p.option("region"), Some("0:4,:"));
        assert!(!Parsed::parse(&sv(&["query", "s.czs"])).unwrap().flag("stats"));
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Parsed::parse(&sv(&["gen", "--dims"])).is_err());
        assert!(Parsed::parse(&sv(&["gen", "-o"])).is_err());
    }

    #[test]
    fn empty_argv_is_error() {
        assert!(Parsed::parse(&[]).is_err());
    }

    #[test]
    fn parse_option_defaults_and_parses() {
        let p = Parsed::parse(&sv(&["tune", "x", "--rate", "0.5"])).unwrap();
        assert_eq!(p.parse_option("rate", 0.01f64).unwrap(), 0.5);
        assert_eq!(p.parse_option("rel", 1e-3f64).unwrap(), 1e-3);
        assert!(p.parse_option::<f64>("rate", 0.0).is_ok());
        let bad = Parsed::parse(&sv(&["tune", "x", "--rate", "abc"])).unwrap();
        assert!(bad.parse_option("rate", 0.01f64).is_err());
    }
}
