//! The individual CLI commands.

use crate::args::{CliError, Parsed};
use crate::czfile::{self, Codec, CzFile};
use cliz::prelude::*;
use cliz_store::storage::HttpRangeBackend;
use cliz_store::{ChunkStoreReader, Dataset};
use std::path::Path;
use std::sync::Arc;

/// Opens a chunk store from a local path or an `http://` URL (range-read
/// through the HTTP backend — only the queried chunks travel the wire).
fn open_reader(path: &str) -> Result<ChunkStoreReader, CliError> {
    if path.starts_with("http://") {
        let backend = HttpRangeBackend::new(path)?;
        Ok(ChunkStoreReader::from_storage(
            Arc::new(backend),
            cliz_store::DEFAULT_CACHE_BUDGET,
        )?)
    } else if path.starts_with("https://") {
        Err(CliError::new(
            "https:// stores are not supported (TLS needs an external terminator); use http://",
        ))
    } else {
        Ok(ChunkStoreReader::open(Path::new(path))?)
    }
}

fn parse_dims(text: &str) -> Result<Vec<usize>, CliError> {
    let dims: Result<Vec<usize>, _> = text.split(',').map(|p| p.trim().parse()).collect();
    let dims = dims.map_err(|_| CliError::new(format!("cannot parse --dims {text}")))?;
    if dims.is_empty() || dims.len() > 4 {
        return Err(CliError::new("--dims takes 1-4 comma-separated extents"));
    }
    Ok(dims)
}

fn dims3(dims: &[usize], kind: &str) -> Result<[usize; 3], CliError> {
    dims.try_into()
        .map_err(|_| CliError::new(format!("{kind} needs exactly 3 dims")))
}

/// `cliz gen <kind> --dims ... [--seed N] -o out.caf`
pub fn gen(p: &Parsed) -> Result<(), CliError> {
    let kind = p.positional(0, "dataset kind")?;
    let seed: u64 = p.parse_option("seed", 42)?;
    let out = p.required("out")?;
    let dims_text = p.required("dims")?;
    let dims = parse_dims(dims_text)?;

    let field = match kind {
        "ssh" => cliz::data::ssh(&dims3(&dims, kind)?, seed),
        "cesm-t" => cliz::data::cesm_t(&dims3(&dims, kind)?, seed),
        "relhum" => cliz::data::relhum(&dims3(&dims, kind)?, seed),
        "tsfc" => cliz::data::tsfc(&dims3(&dims, kind)?, seed),
        "hurricane-t" => cliz::data::hurricane_t(&dims3(&dims, kind)?, seed),
        "soilliq" => {
            let d4: [usize; 4] = dims
                .as_slice()
                .try_into()
                .map_err(|_| CliError::new("soilliq needs exactly 4 dims"))?;
            cliz::data::soilliq(&d4, seed)
        }
        "salt" => {
            let d4: [usize; 4] = dims
                .as_slice()
                .try_into()
                .map_err(|_| CliError::new("salt needs exactly 4 dims"))?;
            cliz::data::salt(&d4, seed)
        }
        other => return Err(CliError::new(format!("unknown dataset kind '{other}'"))),
    };

    let mut ds = Dataset::new(field.kind.name(), field.data, field.mask);
    if let Some(axis) = field.time_axis {
        ds.set_attr("time_axis", axis.to_string());
    }
    if let Some(period) = field.nominal_period {
        ds.set_attr("period", period.to_string());
    }
    ds.set_attr("generator_seed", seed.to_string());
    cliz_store::save(Path::new(out), &ds)?;
    println!(
        "wrote {} ({} {}, {} bytes of f32{})",
        out,
        ds.name,
        ds.data.shape(),
        ds.data.len() * 4,
        if ds.mask.is_some() { ", masked" } else { "" }
    );
    Ok(())
}

/// `cliz info <file.caf>`
pub fn info(p: &Parsed) -> Result<(), CliError> {
    let path = p.positional(0, "input file")?;
    let ds = cliz_store::load(Path::new(path))?;
    println!("variable: {}", ds.name);
    print!("dims:    ");
    for (name, &extent) in ds.dim_names.iter().zip(ds.data.shape().dims()) {
        print!(" {name}={extent}");
    }
    println!();
    println!("points:   {}", ds.data.len());
    if let Some(m) = &ds.mask {
        println!(
            "mask:     {} valid / {} total ({:.1}% invalid)",
            m.valid_count(),
            m.len(),
            m.invalid_fraction() * 100.0
        );
    } else {
        println!("mask:     none");
    }
    for (k, v) in &ds.attrs {
        println!("attr:     {k} = {v}");
    }
    let (mn, mx) = cliz::valid_min_max(&ds.data, ds.mask.as_ref());
    println!("range:    [{mn}, {mx}] over valid points");
    Ok(())
}

/// `cliz tune <file.caf> [--rate R] [--rel E] -o model.clizcfg`
pub fn tune(p: &Parsed) -> Result<(), CliError> {
    let path = p.positional(0, "input file")?;
    let rate: f64 = p.parse_option("rate", 0.01)?;
    let rel: f64 = p.parse_option("rel", 1e-3)?;
    let out = p.required("out")?;
    let ds = cliz_store::load(Path::new(path))?;

    let bound = cliz::rel_bound_on_valid(&ds.data, ds.mask.as_ref(), rel);
    let result = cliz::autotune(
        &ds.data,
        ds.mask.as_ref(),
        TuneSpec {
            sampling_rate: rate,
            time_axis: ds.time_axis(),
            bound,
        },
    )?;
    std::fs::write(out, result.best.to_config_string())?;
    println!(
        "tuned {} pipelines on {} sampled points in {:.2}s",
        result.ranking.len(),
        result.sample_points,
        result.seconds
    );
    if let Some(period) = result.period_detected {
        println!("detected period: {period}");
    }
    println!("winner: {}", result.best.describe());
    println!("wrote {out}");
    Ok(())
}

fn codec_instance(
    codec: Codec,
    config: Option<PipelineConfig>,
) -> Result<Box<dyn Compressor>, CliError> {
    Ok(match codec {
        Codec::Cliz => Box::new(match config {
            Some(c) => Cliz::tuned(c),
            None => Cliz::new(),
        }),
        Codec::Sz3 => Box::new(SzInterp),
        Codec::Sz2 => Box::new(cliz::Sz2Lorenzo),
        Codec::Zfp => Box::new(Zfp),
        Codec::Sperr => Box::new(Sperr),
        Codec::Qoz => Box::new(Qoz),
        // Chunked streams have no single-shot codec; callers route them to
        // the dedicated chunked entry points first.
        Codec::ClizChunked => {
            return Err(CliError::new("chunked streams have no single-shot codec"))
        }
    })
}

/// Parses `--threads` (0 = auto / host parallelism), rejecting it for codecs
/// without a worker pool so a silently ignored flag can't misreport a
/// benchmark.
fn parse_threads(p: &Parsed, chunked: bool) -> Result<usize, CliError> {
    let threads: usize = p.parse_option("threads", 0usize)?;
    if p.option("threads").is_some() && !chunked {
        return Err(CliError::new("--threads only applies to chunked streams"));
    }
    Ok(threads)
}

/// `cliz compress <file.caf> -o file.cz [--rel E | --abs X] [--config F] [--compressor C]`
pub fn compress(p: &Parsed) -> Result<(), CliError> {
    let path = p.positional(0, "input file")?;
    let out = p.required("out")?;
    let ds = cliz_store::load(Path::new(path))?;

    let bound = parse_bound(p, &ds)?;

    let chunk: Option<usize> = match p.option("chunk") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| CliError::new("bad --chunk"))?),
    };
    let codec = match (p.option("compressor"), chunk) {
        (None, None) => Codec::Cliz,
        (None, Some(_)) => Codec::ClizChunked,
        (Some(name), None) => Codec::from_name(name)
            .ok_or_else(|| CliError::new(format!("unknown compressor '{name}'")))?,
        (Some(_), Some(_)) => {
            return Err(CliError::new("--chunk only applies to the cliz compressor"))
        }
    };
    let is_cliz = matches!(codec, Codec::Cliz | Codec::ClizChunked);
    let config = match p.option("config") {
        None => None,
        Some(f) => {
            if !is_cliz {
                return Err(CliError::new("--config only applies to the cliz compressor"));
            }
            Some(PipelineConfig::from_config_string(&std::fs::read_to_string(f)?)?)
        }
    };
    let masked = is_cliz
        && ds.mask.as_ref().is_some_and(|m| !m.is_all_valid())
        && config.as_ref().map_or(true, |c| c.use_mask);
    let threads = parse_threads(p, matches!(codec, Codec::ClizChunked))?;

    let t0 = std::time::Instant::now();
    let (payload, codec_name): (Vec<u8>, &str) = match codec {
        Codec::ClizChunked => {
            let cfg = config
                .clone()
                .unwrap_or_else(|| PipelineConfig::default_for(ds.data.shape().ndim()));
            let chunk = chunk.ok_or_else(|| CliError::new("--chunk required for chunked streams"))?;
            (
                cliz::compress_chunked_with_threads(
                    &ds.data,
                    ds.mask.as_ref(),
                    bound,
                    &cfg,
                    chunk,
                    threads,
                )?,
                "cliz-chunked",
            )
        }
        _ => {
            let compressor = codec_instance(codec, config)?;
            (
                compressor.compress(&ds.data, ds.mask.as_ref(), bound)?,
                compressor.name(),
            )
        }
    };
    let secs = t0.elapsed().as_secs_f64();

    let cz = CzFile {
        codec,
        name: ds.name.clone(),
        dim_names: ds.dim_names.clone(),
        attrs: ds.attrs.clone(),
        masked,
        payload,
    };
    czfile::save(Path::new(out), &cz)?;
    let original = ds.data.len() * 4;
    println!(
        "{}: {} -> {} bytes (ratio {:.2}x, {:.3} bits/value) in {:.2}s",
        codec_name,
        original,
        cz.payload.len(),
        original as f64 / cz.payload.len() as f64,
        cz.payload.len() as f64 * 8.0 / ds.data.len() as f64,
        secs
    );
    if masked {
        println!("note: stream is mask-dependent; decompress with --mask-from {path}");
    }
    Ok(())
}

/// `cliz decompress <file.cz> -o out.caf [--mask-from orig.caf]`
pub fn decompress(p: &Parsed) -> Result<(), CliError> {
    let path = p.positional(0, "input file")?;
    let out = p.required("out")?;
    let cz = czfile::load(Path::new(path))?;

    let mask = match p.option("mask-from") {
        Some(f) => cliz_store::load(Path::new(f))?.mask,
        None => None,
    };
    if cz.masked && mask.is_none() {
        return Err(CliError::new(
            "stream was compressed against a mask map; pass --mask-from <orig.caf>",
        ));
    }

    let threads = parse_threads(p, matches!(cz.codec, Codec::ClizChunked))?;
    let data = match cz.codec {
        Codec::ClizChunked => {
            cliz::decompress_chunked_with_threads(&cz.payload, mask.as_ref(), threads)?
        }
        _ => codec_instance(cz.codec, None)?.decompress(&cz.payload, mask.as_ref())?,
    };
    let mut ds = Dataset::new(cz.name.clone(), data, mask);
    ds.dim_names = cz.dim_names.clone();
    ds.attrs = cz.attrs.clone();
    cliz_store::save(Path::new(out), &ds)?;
    println!(
        "decompressed {} ({}) -> {} [{} values]",
        path,
        cz.codec.name(),
        out,
        ds.data.len()
    );
    Ok(())
}

/// `cliz slab <file.cz> --index N -o slab.caf [--mask-from orig.caf]` —
/// random access into a chunked stream without decoding the rest.
pub fn slab(p: &Parsed) -> Result<(), CliError> {
    let path = p.positional(0, "input file")?;
    let out = p.required("out")?;
    let index: usize = p
        .required("index")?
        .parse()
        .map_err(|_| CliError::new("bad --index"))?;
    let cz = czfile::load(Path::new(path))?;
    if cz.codec != Codec::ClizChunked {
        return Err(CliError::new(
            "slab extraction needs a chunked stream (compress with --chunk N)",
        ));
    }
    let mask = match p.option("mask-from") {
        Some(f) => cliz_store::load(Path::new(f))?.mask,
        None => None,
    };
    if cz.masked && mask.is_none() {
        return Err(CliError::new(
            "stream was compressed against a mask map; pass --mask-from <orig.caf>",
        ));
    }
    let data = cliz::decompress_chunk(&cz.payload, index, mask.as_ref())?;
    let mut ds = Dataset::new(format!("{}[slab {index}]", cz.name), data, None);
    ds.dim_names = cz.dim_names.clone();
    ds.attrs = cz.attrs.clone();
    ds.set_attr("slab_index", index.to_string());
    cliz_store::save(Path::new(out), &ds)?;
    println!("extracted slab {index} of {path} -> {out}");
    Ok(())
}

/// Parses the shared `--abs X | --rel E` bound options against a dataset's
/// valid value range (default `--rel 1e-3`).
fn parse_bound(p: &Parsed, ds: &Dataset) -> Result<cliz::quant::ErrorBound, CliError> {
    match (p.option("abs"), p.option("rel")) {
        (Some(a), None) => Ok(cliz::quant::ErrorBound::Abs(
            a.parse().map_err(|_| CliError::new("bad --abs"))?,
        )),
        (None, rel) => {
            let r: f64 = rel
                .unwrap_or("1e-3")
                .parse()
                .map_err(|_| CliError::new("bad --rel"))?;
            Ok(cliz::rel_bound_on_valid(&ds.data, ds.mask.as_ref(), r))
        }
        (Some(_), Some(_)) => Err(CliError::new("--abs and --rel are exclusive")),
    }
}

/// `cliz pack-store <file.caf> -o file.czs --chunk ROWS [--rel E | --abs X]
/// [--config F] [--threads N]` — build a CZS random-access chunk store.
pub fn pack_store(p: &Parsed) -> Result<(), CliError> {
    let path = p.positional(0, "input file")?;
    let out = p.required("out")?;
    let chunk: usize = p
        .required("chunk")?
        .parse()
        .map_err(|_| CliError::new("bad --chunk"))?;
    let threads: usize = p.parse_option("threads", 0usize)?;
    let ds = cliz_store::load(Path::new(path))?;
    let bound = parse_bound(p, &ds)?;
    let config = match p.option("config") {
        None => PipelineConfig::default_for(ds.data.shape().ndim()),
        Some(f) => PipelineConfig::from_config_string(&std::fs::read_to_string(f)?)?,
    };

    let t0 = std::time::Instant::now();
    let bytes = cliz_store::pack_store(&ds, bound, &config, chunk, threads)?;
    std::fs::write(out, &bytes)?;
    let original = ds.data.len() * 4;
    let n_chunks = ds.data.shape().dims().first().map_or(1, |&d| d.div_ceil(chunk));
    println!(
        "packed {} -> {} ({} chunks of {} rows, {} -> {} bytes, ratio {:.2}x) in {:.2}s",
        path,
        out,
        n_chunks,
        chunk,
        original,
        bytes.len(),
        original as f64 / bytes.len() as f64,
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Parses a `--region` spec (`start:end` per dimension, `:` = full extent,
/// bare `i` = one slice) against the store's extents.
fn parse_region(text: &str, dims: &[usize]) -> Result<Vec<std::ops::Range<usize>>, CliError> {
    let parts: Vec<&str> = text.split(',').collect();
    if parts.len() != dims.len() {
        return Err(CliError::new(format!(
            "--region has {} ranges but the dataset has {} dims",
            parts.len(),
            dims.len()
        )));
    }
    let mut ranges = Vec::with_capacity(dims.len());
    for (part, &extent) in parts.iter().zip(dims) {
        let part = part.trim();
        let range = match part.split_once(':') {
            Some((lo, hi)) => {
                let start: usize = if lo.is_empty() {
                    0
                } else {
                    lo.parse()
                        .map_err(|_| CliError::new(format!("bad range '{part}'")))?
                };
                let end: usize = if hi.is_empty() {
                    extent
                } else {
                    hi.parse()
                        .map_err(|_| CliError::new(format!("bad range '{part}'")))?
                };
                start..end
            }
            None => {
                let i: usize = part
                    .parse()
                    .map_err(|_| CliError::new(format!("bad range '{part}'")))?;
                i..i.saturating_add(1)
            }
        };
        ranges.push(range);
    }
    Ok(ranges)
}

/// `cliz query <file.czs> --region SPEC [-o region.caf]` — decode just one
/// region of a chunk store.
pub fn query(p: &Parsed) -> Result<(), CliError> {
    let path = p.positional(0, "store file")?;
    let spec = p.required("region")?;
    let reader = open_reader(path)?;
    let ranges = parse_region(spec, reader.dims())?;

    let t0 = std::time::Instant::now();
    let region = reader.read_region(&ranges)?;
    let secs = t0.elapsed().as_secs_f64();
    let stats = reader.stats();
    println!(
        "region {} of {} ({}): decoded {} of {} chunks in {:.3}s",
        region.shape(),
        reader.name(),
        path,
        stats.decodes,
        reader.n_chunks(),
        secs
    );
    println!(
        "cache: {} hits / {} misses, {} bytes resident",
        stats.cache.hits, stats.cache.misses, stats.cache.resident_bytes
    );
    if p.flag("stats") {
        println!(
            "backend: {} gets, {} bytes fetched (coalesced over {} cold chunks)",
            stats.backend_gets, stats.backend_bytes, stats.decodes
        );
        println!("decode:  {:.3} ms inside the chunk codec", stats.decode_ns as f64 / 1e6);
    }
    match p.option("out") {
        Some(out) => {
            let mut ds = Dataset::new(format!("{}[region]", reader.name()), region, None);
            ds.dim_names = reader.dim_names().to_vec();
            ds.attrs = reader.attrs().to_vec();
            ds.set_attr("region", spec.to_string());
            cliz_store::save(Path::new(out), &ds)?;
            println!("wrote {out}");
        }
        None => {
            if let Some((mn, mx)) = region.finite_min_max() {
                println!("range: [{mn}, {mx}]");
            }
        }
    }
    Ok(())
}

/// `cliz serve <file.czs|http://...> [--addr HOST:PORT] [--threads N]
/// [--port-file F]` — serve region queries over TCP until killed.
pub fn serve(p: &Parsed) -> Result<(), CliError> {
    let path = p.positional(0, "store file")?;
    let addr = p.option("addr").unwrap_or("127.0.0.1:4664");
    let threads: usize = p.parse_option("threads", 4usize)?;
    let reader = Arc::new(open_reader(path)?);
    let name = reader.name().to_string();
    let (n_chunks, chunk_len) = (reader.n_chunks(), reader.chunk_len());
    let server = cliz_serve::Server::start(
        reader,
        addr,
        cliz_serve::ServerConfig {
            threads,
            ..cliz_serve::ServerConfig::default()
        },
    )?;
    println!(
        "serving {name} ({n_chunks} chunks of {chunk_len} rows) on {} with {threads} threads",
        server.addr()
    );
    // Scripts that bind an ephemeral port (`--addr 127.0.0.1:0`) learn the
    // real address from the port file instead of scraping stdout.
    if let Some(f) = p.option("port-file") {
        std::fs::write(f, server.addr().to_string())?;
    }
    // Serve until the process is killed; the worker pool owns all work.
    loop {
        std::thread::park();
    }
}

/// `cliz fetch <host:port> --region SPEC [-o region.caf]` — query a running
/// `cliz serve` instance; `-o` writes the same CAF bytes `cliz query -o`
/// would write against the local store.
pub fn fetch(p: &Parsed) -> Result<(), CliError> {
    let addr = p.positional(0, "server address")?;
    let spec = p.required("region")?;
    let mut client = cliz_serve::Client::connect(addr)?;
    let pairs = client.info()?;
    let find = |key: &str| {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let name = find("variable").ok_or_else(|| CliError::new("server INFO lacks a variable"))?;

    let t0 = std::time::Instant::now();
    let (shape, values) = client.region(spec)?;
    let secs = t0.elapsed().as_secs_f64();
    if p.flag("stats") {
        println!("server stats: {}", client.stats_json()?);
    }
    client.quit()?;

    let dims_text = shape
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x");
    println!(
        "fetched region {dims_text} of {name} from {addr} ({} bytes) in {secs:.3}s",
        values.len() * 4
    );
    let region = Grid::from_vec(Shape::new(&shape), values);
    match p.option("out") {
        Some(out) => {
            // Mirror `query -o` exactly (name, dim names, attrs, region
            // attr) so fetching over the wire and querying the local store
            // produce byte-identical CAF files.
            let mut ds = Dataset::new(format!("{name}[region]"), region, None);
            ds.dim_names = find("dim_names")
                .unwrap_or_default()
                .split(',')
                .map(str::to_string)
                .collect();
            for (k, v) in &pairs {
                if let Some(attr) = k.strip_prefix("attr:") {
                    ds.attrs.push((attr.to_string(), v.clone()));
                }
            }
            ds.set_attr("region", spec.to_string());
            cliz_store::save(Path::new(out), &ds)?;
            println!("wrote {out}");
        }
        None => {
            if let Some((mn, mx)) = region.finite_min_max() {
                println!("range: [{mn}, {mx}]");
            }
        }
    }
    Ok(())
}

/// `cliz eval <orig.caf> <recon.caf>`
pub fn eval(p: &Parsed) -> Result<(), CliError> {
    let orig = cliz_store::load(Path::new(p.positional(0, "original file")?))?;
    let recon = cliz_store::load(Path::new(p.positional(1, "reconstructed file")?))?;
    if orig.data.shape() != recon.data.shape() {
        return Err(CliError::new("shape mismatch between files"));
    }
    let mask = orig.mask.as_ref();
    let stats = cliz::metrics::error::error_stats(
        orig.data.as_slice(),
        recon.data.as_slice(),
        mask,
    );
    let ssim = cliz::metrics::ssim(
        &orig.data,
        &recon.data,
        mask,
        cliz::metrics::SsimSpec::default(),
    );
    println!("points compared: {} (valid)", stats.points);
    println!("max |error|:     {:.6e}", stats.max_abs);
    println!("RMSE:            {:.6e}", stats.rmse);
    println!("PSNR:            {:.2} dB", stats.psnr());
    println!("SSIM:            {ssim:.6}");

    // Z-checker-style distribution diagnostics.
    let analysis = cliz::metrics::analyze_errors(
        orig.data.as_slice(),
        recon.data.as_slice(),
        mask,
        21,
        8,
    );
    println!("pearson:         {:.8}", analysis.pearson);
    println!("error bias:      {:+.3e}", analysis.mean_error);
    println!(
        "max |autocorr|:  {:.4} over lags 1..=8 (near 0 = unstructured error)",
        analysis.max_autocorrelation()
    );
    if analysis.max_abs > 0.0 && analysis.points > 0 {
        let peak = analysis.histogram.iter().copied().max().unwrap_or(1).max(1);
        println!("error histogram over [-{0:.2e}, +{0:.2e}]:", analysis.max_abs);
        for (b, &count) in analysis.histogram.iter().enumerate() {
            let bar = "#".repeat(count * 40 / peak);
            let lo = -analysis.max_abs + b as f64 * analysis.bucket_width;
            println!("  {lo:+.2e} {bar}");
        }
    }
    Ok(())
}
