//! `cliz` — command-line front end for the CliZ compressor.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cliz_cli::run(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
