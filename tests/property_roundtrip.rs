//! Property-based tests: for arbitrary shapes, data, masks, and bounds, the
//! error-bound contract holds and decompression inverts compression.

use cliz::prelude::*;
use cliz::grid::{Grid, MaskMap, Shape};
use proptest::prelude::*;

/// Arbitrary small shapes (1-3 dims, products kept modest for speed).
fn arb_dims() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        prop::collection::vec(1usize..40, 1),
        prop::collection::vec(1usize..20, 2),
        prop::collection::vec(1usize..10, 3),
    ]
}

/// Data styles climate fields exhibit: smooth, rough, constant, spiky.
fn arb_data(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop_oneof![
        // smooth waves with random parameters
        (0.01f64..0.5, -100.0f64..100.0).prop_map(move |(f, off)| (0..n)
            .map(|i| ((i as f64 * f).sin() * 10.0 + off) as f32)
            .collect()),
        // uniform random noise
        prop::collection::vec(-1000.0f32..1000.0, n..=n),
        // constants
        (-10.0f32..10.0).prop_map(move |v| vec![v; n]),
        // mostly smooth with occasional huge spikes (fill-like)
        (0.01f64..0.3).prop_map(move |f| (0..n)
            .map(|i| {
                if i % 37 == 5 {
                    1.0e32
                } else {
                    ((i as f64 * f).cos() * 5.0) as f32
                }
            })
            .collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cliz_bound_holds_on_arbitrary_data(
        dims in arb_dims(),
        seed_eb in 1e-6f64..1.0,
    ) {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|i| ((i as f64 * 0.173).sin() * 42.0) as f32).collect();
        let g = Grid::from_vec(Shape::new(&dims), data);
        let cfg = PipelineConfig::default_for(dims.len());
        let bytes = cliz::compress(&g, None, ErrorBound::Abs(seed_eb), &cfg).unwrap();
        let out = cliz::decompress(&bytes, None).unwrap();
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            prop_assert!((*a as f64 - *b as f64).abs() <= seed_eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn cliz_bound_holds_on_varied_styles(
        dims in arb_dims(),
        style_seed in 0u64..u64::MAX,
    ) {
        let n: usize = dims.iter().product();
        // Use the seed to pick data deterministically inside the test (the
        // strategy-level arb_data is exercised in the sz3 test below).
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(style_seed | 1);
                ((x >> 33) as f64 / 4e9 + ((i as f64) * 0.1).sin()) as f32
            })
            .collect();
        let g = Grid::from_vec(Shape::new(&dims), data);
        let eb = 1e-3;
        let cfg = PipelineConfig::default_for(dims.len());
        let bytes = cliz::compress(&g, None, ErrorBound::Abs(eb), &cfg).unwrap();
        let out = cliz::decompress(&bytes, None).unwrap();
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            prop_assert!((*a as f64 - *b as f64).abs() <= eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn sz3_and_qoz_bound_holds(dims in arb_dims(), data_sel in 0usize..4) {
        let n: usize = dims.iter().product();
        let data = match data_sel {
            0 => (0..n).map(|i| (i as f32 * 0.37).sin() * 9.0).collect::<Vec<_>>(),
            1 => vec![3.25f32; n],
            2 => (0..n).map(|i| if i % 23 == 7 { 1.0e31 } else { i as f32 * 0.01 }).collect(),
            _ => (0..n).map(|i| ((i * 2654435761) % 1000) as f32 - 500.0).collect(),
        };
        let g = Grid::from_vec(Shape::new(&dims), data);
        let eb = 1e-2;
        for comp in [&SzInterp as &dyn Compressor, &Qoz] {
            let bytes = comp.compress(&g, None, ErrorBound::Abs(eb)).unwrap();
            let out = comp.decompress(&bytes, None).unwrap();
            for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
                prop_assert!((*a as f64 - *b as f64).abs() <= eb * (1.0 + 1e-12));
            }
        }
    }

    #[test]
    fn masked_roundtrip_arbitrary_masks(
        dims in prop::collection::vec(2usize..14, 2..=3),
        mask_stride in 2usize..13,
    ) {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|i| {
                if i % mask_stride == 0 {
                    9.96921e36
                } else {
                    (i as f32 * 0.21).sin() * 4.0
                }
            })
            .collect();
        let flags: Vec<bool> = (0..n).map(|i| i % mask_stride != 0).collect();
        let shape = Shape::new(&dims);
        let g = Grid::from_vec(shape.clone(), data);
        let mask = MaskMap::from_flags(shape, flags);
        let eb = 1e-3;
        let cfg = PipelineConfig::default_for(dims.len());
        let bytes = cliz::compress(&g, Some(&mask), ErrorBound::Abs(eb), &cfg).unwrap();
        let out = cliz::decompress(&bytes, Some(&mask)).unwrap();
        for (i, (a, b)) in g.as_slice().iter().zip(out.as_slice()).enumerate() {
            if mask.is_valid(i) {
                prop_assert!((*a as f64 - *b as f64).abs() <= eb * (1.0 + 1e-12));
            } else {
                prop_assert_eq!(*b, 9.96921e36);
            }
        }
    }

    #[test]
    fn chunked_equals_unchunked_reconstruction_bound(
        dims in prop::collection::vec(4usize..14, 2..=3),
        chunk_len in 1usize..6,
    ) {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|i| ((i as f64) * 0.19).sin() as f32 * 7.0).collect();
        let g = Grid::from_vec(Shape::new(&dims), data);
        let eb = 1e-3;
        let cfg = PipelineConfig::default_for(dims.len());
        let bytes = cliz::compress_chunked(&g, None, ErrorBound::Abs(eb), &cfg, chunk_len).unwrap();
        let out = cliz::decompress_chunked(&bytes, None).unwrap();
        prop_assert_eq!(out.shape().dims(), g.shape().dims());
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            prop_assert!((*a as f64 - *b as f64).abs() <= eb * (1.0 + 1e-12));
        }
        // Random chunk access agrees with the full decode.
        let header = cliz_core::chunked::read_header(&bytes).unwrap();
        let i = chunk_len % header.n_chunks;
        let chunk = cliz::decompress_chunk(&bytes, i, None).unwrap();
        let mut start = vec![0usize; dims.len()];
        start[0] = i * chunk_len;
        let mut size = dims.clone();
        size[0] = chunk.shape().dim(0);
        prop_assert_eq!(chunk, out.block(&start, &size));
    }

    #[test]
    fn range_coder_roundtrips_arbitrary_symbols(
        symbols in prop::collection::vec(0u32..3000, 0..1500)
    ) {
        let bytes = cliz::entropy::range_encode_stream(&symbols);
        prop_assert_eq!(cliz::entropy::range_decode_stream(&bytes), Some(symbols));
    }

    #[test]
    fn zlite_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = cliz::lossless::compress(&data);
        prop_assert_eq!(cliz::lossless::decompress(&c).unwrap(), data);
    }

    #[test]
    fn huffman_roundtrips_arbitrary_symbols(
        symbols in prop::collection::vec(0u32..5000, 0..2000)
    ) {
        let bytes = cliz::entropy::huffman::encode_stream(&symbols);
        prop_assert_eq!(cliz::entropy::huffman::decode_stream(&bytes), Some(symbols));
    }

    #[test]
    fn arb_data_styles_roundtrip_zfp_sperr(
        dims in prop::collection::vec(3usize..12, 2..=3),
        style in arb_data(1),
    ) {
        // arb_data generated for length-1; regenerate for the real length by
        // tiling (keeps strategies cheap while covering the styles).
        let n: usize = dims.iter().product();
        let base = style[0];
        let data: Vec<f32> = (0..n)
            .map(|i| base + ((i as f64 * 0.17).sin() * 3.0) as f32)
            .collect();
        let g = Grid::from_vec(Shape::new(&dims), data);
        let eb = 1e-2;
        for comp in [&Zfp as &dyn Compressor, &Sperr] {
            let bytes = comp.compress(&g, None, ErrorBound::Abs(eb)).unwrap();
            let out = comp.decompress(&bytes, None).unwrap();
            for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
                if a.is_finite() {
                    prop_assert!((*a as f64 - *b as f64).abs() <= eb);
                }
            }
        }
    }
}
