//! Cross-crate integration: every compressor honours the error bound on
//! every (scaled-down) Table III dataset.

use cliz::prelude::*;
use cliz::data::ClimateDataset;

fn small_datasets() -> Vec<ClimateDataset> {
    vec![
        cliz::data::ssh(&[32, 28, 48], 1),
        cliz::data::cesm_t(&[8, 36, 60], 1),
        cliz::data::relhum(&[6, 30, 48], 1),
        cliz::data::soilliq(&[24, 4, 24, 32], 1),
        cliz::data::tsfc(&[36, 30, 24], 1),
        cliz::data::hurricane_t(&[10, 40, 40], 1),
    ]
}

/// Resolves the absolute bound the same way the compressors do: relative to
/// the valid (unmasked) value range.
fn resolve_eb_valid(d: &ClimateDataset, rel: f64) -> f64 {
    let mut mn = f32::INFINITY;
    let mut mx = f32::NEG_INFINITY;
    for (i, &v) in d.data.as_slice().iter().enumerate() {
        let valid = d.mask.as_ref().is_none_or(|m| m.is_valid(i));
        if valid && v.is_finite() {
            mn = mn.min(v);
            mx = mx.max(v);
        }
    }
    rel * (mx - mn) as f64
}

/// Baselines are mask-blind: they resolve Rel bounds against the full data
/// range including fills, which makes their effective bound huge on masked
/// datasets (exactly the paper's point). To assert a *meaningful* contract
/// for everyone, drive every compressor with an absolute bound computed from
/// the valid range.
#[test]
fn error_bound_contract_all_compressors_all_datasets() {
    for dataset in small_datasets() {
        let eb = resolve_eb_valid(&dataset, 1e-3);
        let bound = ErrorBound::Abs(eb);
        for compressor in cliz::all_compressors_extended(None) {
            let bytes = compressor
                .compress(&dataset.data, dataset.mask.as_ref(), bound)
                .unwrap_or_else(|e| {
                    panic!("{} failed on {}: {e}", compressor.name(), dataset.kind.name())
                });
            let recon = compressor
                .decompress(&bytes, dataset.mask.as_ref())
                .unwrap_or_else(|e| {
                    panic!("{} decode failed on {}: {e}", compressor.name(), dataset.kind.name())
                });
            assert_eq!(recon.shape(), dataset.data.shape());
            // CliZ guarantees the bound on valid points; the mask-blind
            // baselines guarantee it everywhere. Check valid points for all.
            let max_err = cliz::metrics::max_abs_error(
                dataset.data.as_slice(),
                recon.as_slice(),
                dataset.mask.as_ref(),
            );
            assert!(
                max_err <= eb * (1.0 + 1e-9),
                "{} on {}: max err {max_err} > eb {eb}",
                compressor.name(),
                dataset.kind.name()
            );
        }
    }
}

#[test]
fn all_compressors_actually_compress_climate_data() {
    let dataset = cliz::data::cesm_t(&[10, 48, 80], 3);
    let eb = resolve_eb_valid(&dataset, 1e-3);
    let original = dataset.data.len() * 4;
    for compressor in cliz::all_compressors(None) {
        let bytes = compressor
            .compress(&dataset.data, None, ErrorBound::Abs(eb))
            .unwrap();
        let ratio = original as f64 / bytes.len() as f64;
        assert!(
            ratio > 2.0,
            "{} ratio only {ratio:.2} on smooth atmosphere data",
            compressor.name()
        );
    }
}

#[test]
fn cliz_beats_mask_blind_baselines_on_masked_data() {
    // The headline qualitative claim (Table V "Mask" row / SOILLIQ note):
    // on heavily masked variables CliZ's ratio advantage is large.
    let dataset = cliz::data::soilliq(&[24, 4, 32, 48], 9);
    let eb = resolve_eb_valid(&dataset, 1e-2);
    let bound = ErrorBound::Abs(eb);
    let original = dataset.data.len() * 4;

    let cliz_bytes = Cliz::new()
        .compress(&dataset.data, dataset.mask.as_ref(), bound)
        .unwrap();
    let cliz_ratio = original as f64 / cliz_bytes.len() as f64;

    for baseline in [&cliz::all_compressors(None)[0], &cliz::all_compressors(None)[1]] {
        let b = baseline
            .compress(&dataset.data, dataset.mask.as_ref(), bound)
            .unwrap();
        let r = original as f64 / b.len() as f64;
        assert!(
            cliz_ratio > 1.5 * r,
            "CliZ {cliz_ratio:.1}x should dominate {} {r:.1}x on 70%-masked data",
            baseline.name()
        );
    }
}

#[test]
fn psnr_improves_with_tighter_bounds() {
    let dataset = cliz::data::ssh(&[32, 28, 48], 4);
    let mut last_psnr = 0.0f64;
    for rel in [1e-1, 1e-2, 1e-3, 1e-4] {
        let eb = resolve_eb_valid(&dataset, rel);
        let bytes = cliz::compress(
            &dataset.data,
            dataset.mask.as_ref(),
            ErrorBound::Abs(eb),
            &PipelineConfig::default_for(3),
        )
        .unwrap();
        let recon = cliz::decompress(&bytes, dataset.mask.as_ref()).unwrap();
        let psnr = cliz::metrics::psnr(
            dataset.data.as_slice(),
            recon.as_slice(),
            dataset.mask.as_ref(),
        );
        assert!(
            psnr > last_psnr,
            "PSNR should rise as eb tightens: {psnr} after {last_psnr}"
        );
        last_psnr = psnr;
    }
    assert!(last_psnr > 80.0, "1e-4 rel bound should exceed 80 dB");
}

#[test]
fn ssim_near_one_for_tight_bounds() {
    let dataset = cliz::data::tsfc(&[40, 32, 24], 8);
    let eb = resolve_eb_valid(&dataset, 1e-4);
    let bytes = cliz::compress(
        &dataset.data,
        dataset.mask.as_ref(),
        ErrorBound::Abs(eb),
        &PipelineConfig::default_for(3),
    )
    .unwrap();
    let recon = cliz::decompress(&bytes, dataset.mask.as_ref()).unwrap();
    let ssim = cliz::metrics::ssim(
        &dataset.data,
        &recon,
        dataset.mask.as_ref(),
        cliz::metrics::SsimSpec::default(),
    );
    assert!(ssim > 0.99, "SSIM {ssim}");
}
