//! Container-format robustness: corrupt, truncated, or cross-format streams
//! must fail cleanly (errors, never panics or wrong silent output).

use cliz::prelude::*;
use cliz::grid::{Grid, Shape};
use cliz::{ChunkedReader, ChunkedWriter};

fn sample_grid() -> Grid<f32> {
    Grid::from_fn(Shape::new(&[24, 32]), |c| {
        ((c[0] as f32 * 0.23).sin() + (c[1] as f32 * 0.31).cos()) * 7.0
    })
}

#[test]
fn truncation_sweep_never_panics() {
    let g = sample_grid();
    let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
        .unwrap();
    // Every short prefix in the header region, then a sweep over the body
    // (step 3 keeps the test fast without losing coverage classes).
    for cut in (0..64.min(bytes.len())).chain((64..bytes.len()).step_by(3)) {
        assert!(
            cliz::decompress(&bytes[..cut], None).is_err(),
            "prefix of {cut} bytes decoded successfully"
        );
    }
}

#[test]
fn single_byte_corruption_detected_or_bound_preserved() {
    // Flipping one byte may still decode (e.g. inside literal values), but
    // must never panic. When it decodes, dims must match.
    let g = sample_grid();
    let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
        .unwrap();
    let mut corrupted = 0usize;
    for pos in (0..bytes.len()).step_by(7) {
        let mut b = bytes.clone();
        b[pos] ^= 0x5A;
        match cliz::decompress(&b, None) {
            Err(_) => corrupted += 1,
            Ok(out) => assert_eq!(out.shape().dims(), &[24, 32]),
        }
    }
    assert!(corrupted > 0, "no corruption ever detected");
}

#[test]
fn cross_format_decoding_rejected() {
    let g = sample_grid();
    let cliz_bytes =
        cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2)).unwrap();
    let sz3_bytes = SzInterp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
    let zfp_bytes = Zfp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();

    assert!(cliz::decompress(&sz3_bytes, None).is_err());
    assert!(cliz::decompress(&zfp_bytes, None).is_err());
    assert!(SzInterp.decompress(&cliz_bytes, None).is_err());
    assert!(Zfp.decompress(&cliz_bytes, None).is_err());
    assert!(Sperr.decompress(&cliz_bytes, None).is_err());
    assert!(Qoz.decompress(&sz3_bytes, None).is_err());
}

#[test]
fn empty_and_tiny_inputs_rejected() {
    assert!(cliz::decompress(&[], None).is_err());
    assert!(cliz::decompress(&[0x43], None).is_err());
    assert!(cliz::decompress(b"CLIZ", None).is_err());
}

#[test]
fn mask_shape_mismatch_rejected() {
    let g = sample_grid();
    let mut flags = vec![true; g.len()];
    flags[0] = false;
    let mask = cliz::grid::MaskMap::from_flags(g.shape().clone(), flags);
    let bytes =
        cliz::compress(&g, Some(&mask), ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
            .unwrap();
    // Right mask works.
    assert!(cliz::decompress(&bytes, Some(&mask)).is_ok());
    // Missing or wrong-shape mask is refused.
    assert!(cliz::decompress(&bytes, None).is_err());
    let wrong = cliz::grid::MaskMap::all_valid(Shape::new(&[32, 24]));
    assert!(cliz::decompress(&bytes, Some(&wrong)).is_err());
}

#[test]
fn future_version_rejected() {
    let g = sample_grid();
    let mut bytes =
        cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
            .unwrap();
    bytes[4] = 99; // version byte
    match cliz::decompress(&bytes, None) {
        Err(cliz::ClizError::UnsupportedVersion(99)) => {}
        other => panic!("expected version error, got {other:?}"),
    }
}

#[test]
fn max_rank_grids_roundtrip() {
    // 5-D and 6-D are legal (MAX_DIMS = 6): exercise the full pipeline there.
    for dims in [vec![3usize, 4, 2, 5, 3], vec![2usize, 3, 2, 2, 3, 4]] {
        let n: usize = dims.iter().product();
        let g = Grid::from_vec(
            Shape::new(&dims),
            (0..n).map(|i| (i as f32 * 0.37).sin() * 3.0).collect(),
        );
        let cfg = PipelineConfig::default_for(dims.len());
        let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &cfg).unwrap();
        let out = cliz::decompress(&bytes, None).unwrap();
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9, "rank {}", dims.len());
        }
    }
}

#[test]
fn nan_values_survive_without_breaking_neighbours() {
    // Unmasked NaNs must escape to literals, reconstruct bit-exact, and the
    // finite points must still honour the bound (NaN poisons its neighbours'
    // predictions into escapes, never into bound violations).
    let mut g = sample_grid();
    for &i in &[5usize, 100, 371, 640] {
        g.as_mut_slice()[i] = f32::NAN;
    }
    let bytes =
        cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
            .unwrap();
    let out = cliz::decompress(&bytes, None).unwrap();
    for (i, (&a, &b)) in g.as_slice().iter().zip(out.as_slice()).enumerate() {
        if a.is_nan() {
            assert!(b.is_nan(), "NaN lost at {i}");
        } else {
            assert!((a as f64 - b as f64).abs() <= 1e-3 * (1.0 + 1e-9), "at {i}");
        }
    }
}

#[test]
fn compressed_stream_is_deterministic() {
    let g = sample_grid();
    let cfg = PipelineConfig::default_for(2);
    let a = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &cfg).unwrap();
    let b = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &cfg).unwrap();
    assert_eq!(a, b, "compression must be deterministic");
}

#[test]
fn chunked_container_corruption_never_panics() {
    let g = sample_grid();
    let bytes = cliz::compress_chunked(
        &g,
        None,
        ErrorBound::Abs(1e-3),
        &PipelineConfig::default_for(2),
        6,
    )
    .unwrap();

    // Truncation sweep: dense over the header, strided over the body.
    for cut in (0..64.min(bytes.len())).chain((64..bytes.len()).step_by(3)) {
        assert!(
            cliz::decompress_chunked(&bytes[..cut], None).is_err(),
            "chunked prefix of {cut} bytes decoded successfully"
        );
    }

    // Bit-flip sweep: decoding may survive (flips inside literals) but must
    // never panic, and surviving output must keep the advertised shape.
    // Random chunk access goes through a separate offset-table path, so
    // exercise both.
    let mut corrupted = 0usize;
    for pos in (0..bytes.len()).step_by(5) {
        let mut b = bytes.clone();
        b[pos] ^= 0x81;
        match cliz::decompress_chunked(&b, None) {
            Err(_) => corrupted += 1,
            Ok(out) => assert_eq!(out.shape().dims(), &[24, 32]),
        }
        let _ = cliz::decompress_chunk(&b, 1, None);
    }
    assert!(corrupted > 0, "no chunked corruption ever detected");
}

#[test]
fn stream_container_corruption_never_panics() {
    // Build a 3-slab stream of [8, 32] records.
    let g = sample_grid();
    let mut sink: Vec<u8> = Vec::new();
    {
        let mut w =
            ChunkedWriter::new(&mut sink, &[32], 1e-3, PipelineConfig::default_for(2)).unwrap();
        for s in 0..3 {
            let rows = g.as_slice()[s * 8 * 32..(s + 1) * 8 * 32].to_vec();
            let slab = Grid::from_vec(Shape::new(&[8, 32]), rows);
            w.write_slab(&slab, None).unwrap();
        }
        w.finish().unwrap();
    }
    let reread = ChunkedReader::open(&sink).unwrap().read_all(|_| None).unwrap();
    assert_eq!(reread.shape().dims(), &[24, 32]);

    // Truncation sweep. Opening may succeed on some prefixes (the trailer
    // parse is length-relative), but every slab read must then fail cleanly.
    for cut in (0..sink.len()).step_by(3) {
        if let Ok(r) = ChunkedReader::open(&sink[..cut]) {
            for i in 0..r.slabs() {
                let _ = r.read_slab(i, None);
            }
            let _ = r.read_all(|_| None);
        }
    }

    // Bit-flip sweep over header, frames, and trailer index.
    let mut corrupted = 0usize;
    for pos in (0..sink.len()).step_by(5) {
        let mut b = sink.clone();
        b[pos] ^= 0xA5;
        match ChunkedReader::open(&b) {
            Err(_) => corrupted += 1,
            Ok(r) => {
                for i in 0..r.slabs() {
                    if r.read_slab(i, None).is_err() {
                        corrupted += 1;
                    }
                }
                let _ = r.read_all(|_| None);
            }
        }
    }
    assert!(corrupted > 0, "no stream corruption ever detected");
}

/// Deterministic xorshift64* PRNG for the mutation sweeps: fixed seeds keep
/// failures reproducible (print the seed on assert) without any rand dep.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Applies `count` random byte mutations (XOR, overwrite, or zero) in place.
fn mutate(bytes: &mut [u8], rng: &mut XorShift, count: usize) {
    if bytes.is_empty() {
        return;
    }
    for _ in 0..count {
        let pos = (rng.next() as usize) % bytes.len();
        match rng.next() % 3 {
            0 => bytes[pos] ^= (rng.next() >> 32) as u8 | 1,
            1 => bytes[pos] = (rng.next() >> 24) as u8,
            _ => bytes[pos] = 0,
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_plain_container() {
    // Multi-byte mutations hit interacting-field corruption (length vs
    // payload, table vs stream) that the single-byte sweep cannot reach.
    let g = sample_grid();
    let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
        .unwrap();
    for seed in 1..=200u64 {
        let mut rng = XorShift(seed);
        let mut b = bytes.clone();
        let count = 1 + (rng.next() as usize) % 8;
        mutate(&mut b, &mut rng, count);
        // Must return (Ok with the right shape, or Err) — never panic.
        if let Ok(out) = cliz::decompress(&b, None) {
            assert_eq!(out.shape().dims(), &[24, 32], "seed {seed}");
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_chunked_container() {
    let g = sample_grid();
    let bytes = cliz::compress_chunked(
        &g,
        None,
        ErrorBound::Abs(1e-3),
        &PipelineConfig::default_for(2),
        6,
    )
    .unwrap();
    for seed in 1..=150u64 {
        let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9));
        let mut b = bytes.clone();
        let count = 1 + (rng.next() as usize) % 8;
        mutate(&mut b, &mut rng, count);
        if let Ok(out) = cliz::decompress_chunked(&b, None) {
            assert_eq!(out.shape().dims(), &[24, 32], "seed {seed}");
        }
        // Random slab access takes the offset-table path: sweep it too.
        for chunk in 0..4 {
            let _ = cliz::decompress_chunk(&b, chunk, None);
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_stream_container() {
    let g = sample_grid();
    let mut sink: Vec<u8> = Vec::new();
    {
        let mut w =
            ChunkedWriter::new(&mut sink, &[32], 1e-3, PipelineConfig::default_for(2)).unwrap();
        for s in 0..3 {
            let rows = g.as_slice()[s * 8 * 32..(s + 1) * 8 * 32].to_vec();
            let slab = Grid::from_vec(Shape::new(&[8, 32]), rows);
            w.write_slab(&slab, None).unwrap();
        }
        w.finish().unwrap();
    }
    for seed in 1..=150u64 {
        let mut rng = XorShift(seed.wrapping_mul(0xDEAD_BEEF) | 1);
        let mut b = sink.clone();
        let count = 1 + (rng.next() as usize) % 8;
        mutate(&mut b, &mut rng, count);
        if let Ok(r) = ChunkedReader::open(&b) {
            for i in 0..r.slabs() {
                let _ = r.read_slab(i, None);
            }
            let _ = r.read_all(|_| None);
        }
    }
}

/// Compressed streams for every baseline codec, for the shared-header sweeps.
fn baseline_streams(g: &Grid<f32>) -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("sz3", SzInterp.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
        ("sz2", Sz2Lorenzo.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
        ("qoz", Qoz.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
        ("zfp", Zfp.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
        ("sperr", Sperr.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
    ]
}

fn baseline_decompress(name: &str, bytes: &[u8]) -> Result<Grid<f32>, cliz::BaselineError> {
    match name {
        "sz3" => SzInterp.decompress(bytes, None),
        "sz2" => Sz2Lorenzo.decompress(bytes, None),
        "qoz" => Qoz.decompress(bytes, None),
        "zfp" => Zfp.decompress(bytes, None),
        _ => Sperr.decompress(bytes, None),
    }
}

/// Bytes of the shared `magic, rank, dims` prefix every baseline container
/// starts with ([`cliz_baselines::header::read_header`]): u32 + u8 + 2×u64
/// for the rank-2 sample grid.
const BASELINE_HEADER_LEN: usize = 4 + 1 + 2 * 8;

#[test]
fn seeded_mutation_sweep_on_baseline_codecs() {
    // The baseline decoders share the hardened header reader; hold them to
    // the same no-panic bar as the CLIZ containers.
    let g = sample_grid();
    for seed in 1..=60u64 {
        for (name, bytes) in baseline_streams(&g) {
            let mut rng = XorShift(seed.wrapping_mul(0x0123_4567_89AB_CDEF) | 1);
            let mut b = bytes.clone();
            let count = 1 + (rng.next() as usize) % 6;
            mutate(&mut b, &mut rng, count);
            let _ = baseline_decompress(name, &b);
        }
    }
}

#[test]
fn baseline_header_bitflip_sweep_detected_or_survived() {
    // Dense single-byte sweep confined to the shared header prefix: every
    // position, four flip patterns, all five codecs. A flipped magic, rank,
    // or dim must come back as a typed error — and whatever still decodes
    // must never panic on the way.
    let g = sample_grid();
    let mut rejected = 0usize;
    for (name, bytes) in baseline_streams(&g) {
        for pos in 0..BASELINE_HEADER_LEN.min(bytes.len()) {
            for flip in [0x01u8, 0x5A, 0x80, 0xFF] {
                let mut b = bytes.clone();
                b[pos] ^= flip;
                if baseline_decompress(name, &b).is_err() {
                    rejected += 1;
                }
            }
        }
    }
    assert!(rejected > 0, "no baseline header corruption ever detected");
}

#[test]
fn baseline_header_truncation_rejected() {
    // No prefix shorter than the header can parse: magic, rank, and every
    // dim read must fail with Truncated, not panic or fabricate a grid.
    let g = sample_grid();
    for (name, bytes) in baseline_streams(&g) {
        for cut in 0..BASELINE_HEADER_LEN.min(bytes.len()) {
            assert!(
                baseline_decompress(name, &bytes[..cut]).is_err(),
                "{name}: header prefix of {cut} bytes decoded successfully"
            );
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_baseline_headers() {
    // Multi-byte mutations confined to the header region reach the
    // interacting-field cases (rank vs dim count, dims vs payload length)
    // that the single-byte sweep cannot.
    let g = sample_grid();
    for (name, bytes) in baseline_streams(&g) {
        for seed in 1..=80u64 {
            let mut rng = XorShift(seed.wrapping_mul(0xA24B_AED4_963E_E407) | 1);
            let mut b = bytes.clone();
            let header_len = BASELINE_HEADER_LEN.min(b.len());
            let count = 1 + (rng.next() as usize) % 4;
            mutate(&mut b[..header_len], &mut rng, count);
            let _ = baseline_decompress(name, &b);
        }
    }
}

/// A small CZS chunk store over the sample grid (4 chunks of 6 rows).
fn sample_store() -> Vec<u8> {
    let ds = cliz::store::Dataset::new("T", sample_grid(), None);
    cliz::store::pack_store(
        &ds,
        ErrorBound::Abs(1e-3),
        &PipelineConfig::default_for(2),
        6,
        1,
    )
    .unwrap()
}

#[test]
fn store_truncation_sweep_never_panics() {
    // The store format ends with an exact-length payload, so *every* prefix
    // must be rejected at open — densely over the metadata/index region,
    // strided over the payload.
    let bytes = sample_store();
    for cut in (0..160.min(bytes.len())).chain((160..bytes.len()).step_by(3)) {
        assert!(
            cliz::store::ChunkStoreReader::from_bytes(bytes[..cut].to_vec()).is_err(),
            "store prefix of {cut} bytes opened successfully"
        );
    }
}

#[test]
fn store_index_bitflip_sweep_detected_or_survived() {
    // Dense single-byte sweep over the metadata + index region (corrupt
    // offsets, lens, checksums, geometry). Every flip must surface as a
    // StoreError — at open via the index invariants and the CLZC offset
    // cross-check, or at read via the per-chunk CRC — never as a panic or
    // as silently wrong-shaped output.
    let bytes = sample_store();
    let mut rejected = 0usize;
    for pos in 0..200.min(bytes.len()) {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut b = bytes.clone();
            b[pos] ^= flip;
            match cliz::store::ChunkStoreReader::from_bytes(b) {
                Err(_) => rejected += 1,
                Ok(reader) => match reader.read_all() {
                    Err(_) => rejected += 1,
                    Ok(out) => assert_eq!(out.shape().dims(), &[24, 32], "pos {pos}"),
                },
            }
        }
    }
    assert!(rejected > 0, "no store index corruption ever detected");
}

#[test]
fn store_checksum_catches_payload_corruption_before_codec() {
    // A flip inside a chunk body leaves the index intact, so the store
    // opens — but the CRC must refuse the chunk before the codec sees it.
    let bytes = sample_store();
    let mut b = bytes.clone();
    let pos = bytes.len() - 40; // deep inside the last chunk's payload
    b[pos] ^= 0x10;
    let reader = cliz::store::ChunkStoreReader::from_bytes(b).unwrap();
    assert!(matches!(
        reader.read_all(),
        Err(cliz::store::StoreError::Checksum { .. })
    ));
    // Chunks before the corrupted one still decode.
    assert!(reader.read_region(&[0..6, 0..32]).is_ok());
}

#[test]
fn seeded_multibyte_mutation_sweep_on_store() {
    // Multi-byte mutations across the whole file hit interacting-field
    // corruption (index vs offset table, geometry vs entry count, CRC vs
    // payload). Open and every read path must return, never panic or
    // over-allocate.
    let bytes = sample_store();
    for seed in 1..=150u64 {
        let mut rng = XorShift(seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1);
        let mut b = bytes.clone();
        let count = 1 + (rng.next() as usize) % 8;
        mutate(&mut b, &mut rng, count);
        if let Ok(reader) = cliz::store::ChunkStoreReader::from_bytes(b) {
            if let Ok(out) = reader.read_all() {
                assert_eq!(out.shape().dims(), &[24, 32], "seed {seed}");
            }
            // Region and single-chunk paths take different guards: sweep both.
            let _ = reader.read_region(&[7..13, 4..20]);
            let _ = reader.chunk(3);
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_store_index_region() {
    // Mutations confined to the metadata/index region concentrate pressure
    // on the length-provenance guards (counts, extents, offsets, lens).
    let bytes = sample_store();
    for seed in 1..=120u64 {
        let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let mut b = bytes.clone();
        let head = 200.min(b.len());
        let count = 1 + (rng.next() as usize) % 6;
        mutate(&mut b[..head], &mut rng, count);
        if let Ok(reader) = cliz::store::ChunkStoreReader::from_bytes(b) {
            if let Ok(out) = reader.read_all() {
                assert_eq!(out.shape().dims(), &[24, 32], "seed {seed}");
            }
        }
    }
}

#[test]
fn decompression_is_idempotent_across_calls() {
    let g = sample_grid();
    let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
        .unwrap();
    let a = cliz::decompress(&bytes, None).unwrap();
    let b = cliz::decompress(&bytes, None).unwrap();
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------------
// Version-byte discipline: every container format places `version: u8`
// directly after its u32 magic (offset 4). A zeroed or future version must
// come back as the owning crate's typed UnsupportedVersion error — never a
// panic, never a misparse into a grid. (CZF1, the CLI's .cz wrapper, has the
// same sweep in `crates/cli/src/czfile.rs` against its string-typed error.)
// ---------------------------------------------------------------------------

/// Copy of `bytes` with the version byte (offset 4) replaced by `v`.
fn with_version(bytes: &[u8], v: u8) -> Vec<u8> {
    let mut b = bytes.to_vec();
    b[4] = v;
    b
}

#[test]
fn version_mutation_rejected_on_cliz_containers() {
    let g = sample_grid();
    let cfg = PipelineConfig::default_for(2);
    let plain = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &cfg).unwrap();
    let chunked = cliz::compress_chunked(&g, None, ErrorBound::Abs(1e-3), &cfg, 6).unwrap();
    let mut stream: Vec<u8> = Vec::new();
    {
        let mut w = ChunkedWriter::new(&mut stream, &[32], 1e-3, cfg.clone()).unwrap();
        w.write_slab(&g, None).unwrap();
        w.finish().unwrap();
    }
    for v in [0u8, 0xEE] {
        assert!(matches!(
            cliz::decompress(&with_version(&plain, v), None),
            Err(cliz::ClizError::UnsupportedVersion(got)) if got == v
        ));
        assert!(matches!(
            cliz::decompress_chunked(&with_version(&chunked, v), None),
            Err(cliz::ClizError::UnsupportedVersion(got)) if got == v
        ));
        assert!(matches!(
            ChunkedReader::open(&with_version(&stream, v)),
            Err(cliz::ClizError::UnsupportedVersion(got)) if got == v
        ));
    }
}

#[test]
fn version_mutation_rejected_on_lossless_store_and_caf() {
    // ZLT1 lossless frames.
    let z = cliz::lossless::compress(b"version sweep payload, long enough to code");
    for v in [0u8, 0xEE] {
        assert!(matches!(
            cliz::lossless::decompress(&with_version(&z, v)),
            Err(cliz::lossless::Error::UnsupportedVersion(got)) if got == v
        ));
    }
    // CZS1 chunk stores.
    let s = sample_store();
    for v in [0u8, 0xEE] {
        assert!(matches!(
            cliz::store::ChunkStoreReader::from_bytes(with_version(&s, v)),
            Err(cliz::store::StoreError::UnsupportedVersion(got)) if got == v
        ));
    }
    // CAF1 archives.
    let ds = cliz::store::Dataset::new("T", sample_grid(), None);
    let mut caf: Vec<u8> = Vec::new();
    cliz::store::write_caf(&mut caf, &ds).unwrap();
    for v in [0u8, 0xEE] {
        let b = with_version(&caf, v);
        assert!(matches!(
            cliz::store::read_caf(&mut &b[..]),
            Err(cliz::store::StoreError::UnsupportedVersion(got)) if got == v
        ));
    }
}

#[test]
fn version_mutation_rejected_on_baseline_containers() {
    let g = sample_grid();
    for (name, bytes) in baseline_streams(&g) {
        for v in [0u8, 0xEE] {
            match baseline_decompress(name, &with_version(&bytes, v)) {
                Err(cliz::BaselineError::UnsupportedVersion(got)) => {
                    assert_eq!(got, v, "{name}");
                }
                other => panic!("{name}: expected UnsupportedVersion({v}), got {other:?}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Error-surface coverage: each parser-facing error variant must be reachable
// from a decode entry point on a concrete corrupt input (backs lint R16).
// ---------------------------------------------------------------------------

#[test]
fn store_open_on_missing_path_is_io() {
    // The chunk store reads through the storage trait, so a missing path
    // surfaces as a typed backend error...
    let err = match cliz::store::ChunkStoreReader::open("/nonexistent/cliz-r16-probe.czs") {
        Err(e) => e,
        Ok(_) => panic!("opened a store at a nonexistent path"),
    };
    assert!(matches!(
        err,
        cliz::store::StoreError::Storage(cliz::store::storage::StorageError::Io(_))
    ));
    // ...while the CAF loader still talks to the filesystem directly.
    let err = match cliz::store::load(std::path::Path::new("/nonexistent/cliz-r16-probe.caf")) {
        Err(e) => e,
        Ok(_) => panic!("loaded a dataset from a nonexistent path"),
    };
    assert!(matches!(err, cliz::store::StoreError::Io(_)));
}

#[test]
fn baseline_cross_magic_and_truncation_are_typed() {
    let g = sample_grid();
    let sz3 = SzInterp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
    let zfp = Zfp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
    assert!(matches!(
        SzInterp.decompress(&zfp, None),
        Err(cliz::BaselineError::BadMagic)
    ));
    assert!(matches!(
        Zfp.decompress(&sz3, None),
        Err(cliz::BaselineError::BadMagic)
    ));
    // Cut mid-dims: magic and version parse, the first u64 extent cannot.
    assert!(matches!(
        SzInterp.decompress(&sz3[..7], None),
        Err(cliz::BaselineError::Truncated)
    ));
}

/// Byte offset of the first embedded ZLT1 lossless frame at or after `from`.
fn find_zlt1(bytes: &[u8], from: usize) -> Option<usize> {
    let m = 0x5A4C_5431u32.to_le_bytes();
    bytes[from..].windows(4).position(|w| w == m).map(|p| p + from)
}

#[test]
fn corrupt_embedded_lossless_frame_is_backend_error() {
    let g = sample_grid();
    // Inside a CLIZ container: breaking the inner ZLT1 magic makes the
    // lossless backend refuse the frame, which must surface as Backend.
    let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
        .unwrap();
    let at = find_zlt1(&bytes, 5).expect("no embedded ZLT1 frame in CLIZ container");
    let mut b = bytes.clone();
    b[at] ^= 0xFF;
    assert!(matches!(
        cliz::decompress(&b, None),
        Err(cliz::ClizError::Backend(_))
    ));
    // Same story inside a baseline container.
    let sz3 = SzInterp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
    let at = find_zlt1(&sz3, 5).expect("no embedded ZLT1 frame in SZ21 container");
    let mut b = sz3.clone();
    b[at] ^= 0xFF;
    assert!(matches!(
        SzInterp.decompress(&b, None),
        Err(cliz::BaselineError::Backend(_))
    ));
}

#[test]
fn bad_chunk_request_is_bad_config_and_wrong_mask_is_mask_required() {
    let g = sample_grid();
    let chunked = cliz::compress_chunked(
        &g,
        None,
        ErrorBound::Abs(1e-3),
        &PipelineConfig::default_for(2),
        6,
    )
    .unwrap();
    // Asking the random-access path for a chunk past the index is a caller
    // configuration error, not corruption.
    assert!(matches!(
        cliz::decompress_chunk(&chunked, 999, None),
        Err(cliz::ClizError::BadConfig(_))
    ));
    // A masked stream decoded with a wrong-shape mask is refused the same
    // way as with no mask at all.
    let mut flags = vec![true; g.len()];
    flags[3] = false;
    let mask = cliz::grid::MaskMap::from_flags(g.shape().clone(), flags);
    let bytes =
        cliz::compress(&g, Some(&mask), ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
            .unwrap();
    let wrong = cliz::grid::MaskMap::all_valid(Shape::new(&[32, 24]));
    assert!(matches!(
        cliz::decompress(&bytes, Some(&wrong)),
        Err(cliz::ClizError::MaskRequired)
    ));
}

/// Parses the CZS1 front matter: returns (index_pos, payload_start, entries)
/// where entries are (offset, len) pairs relative to the payload. Assumes a
/// maskless store (as `sample_store` builds).
fn czs_index(b: &[u8]) -> (usize, usize, Vec<(usize, usize)>) {
    let u16at = |p: usize| u16::from_le_bytes([b[p], b[p + 1]]) as usize;
    let u32at = |p: usize| u32::from_le_bytes(b[p..p + 4].try_into().unwrap()) as usize;
    let u64at = |p: usize| u64::from_le_bytes(b[p..p + 8].try_into().unwrap()) as usize;
    let mut p = 5; // magic + version
    p += 2 + u16at(p); // dataset name
    let nattrs = u16at(p);
    p += 2;
    for _ in 0..nattrs {
        p += 2 + u16at(p); // key
        p += 2 + u16at(p); // value
    }
    let ndim = b[p] as usize;
    p += 1;
    for _ in 0..ndim {
        p += 2 + u16at(p); // dim name
        p += 8; // extent
    }
    p += 1 + 8; // flags + chunk_len
    let n_chunks = u32at(p);
    p += 4;
    let index_pos = p;
    let entries: Vec<(usize, usize)> = (0..n_chunks)
        .map(|i| {
            let e = index_pos + i * 20;
            (u64at(e), u64at(e + 8))
        })
        .collect();
    p += n_chunks * 20;
    p += 8; // payload_len
    (index_pos, p, entries)
}

#[test]
fn chunk_corruption_behind_a_valid_crc_is_codec_error() {
    // Re-checksumming a corrupted chunk gets it past the CRC gate, so the
    // failure must surface from the codec itself as StoreError::Codec.
    let bytes = sample_store();
    let (index_pos, payload_start, entries) = czs_index(&bytes);
    let zlt = find_zlt1(&bytes, payload_start).expect("no ZLT1 frame in store payload")
        - payload_start;
    let k = entries
        .iter()
        .position(|&(off, len)| zlt >= off && zlt < off + len)
        .expect("ZLT1 frame outside every indexed chunk");
    let (off, len) = entries[k];
    let mut b = bytes.clone();
    b[payload_start + zlt] ^= 0xFF;
    let crc = cliz::store::checksum::crc32(&b[payload_start + off..payload_start + off + len]);
    let crc_pos = index_pos + k * 20 + 16;
    b[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
    let reader = cliz::store::ChunkStoreReader::from_bytes(b).unwrap();
    assert!(matches!(
        reader.chunk(k),
        Err(cliz::store::StoreError::Codec(_))
    ));
}
