//! Container-format robustness: corrupt, truncated, or cross-format streams
//! must fail cleanly (errors, never panics or wrong silent output).

use cliz::prelude::*;
use cliz::grid::{Grid, Shape};
use cliz::{ChunkedReader, ChunkedWriter};

fn sample_grid() -> Grid<f32> {
    Grid::from_fn(Shape::new(&[24, 32]), |c| {
        ((c[0] as f32 * 0.23).sin() + (c[1] as f32 * 0.31).cos()) * 7.0
    })
}

#[test]
fn truncation_sweep_never_panics() {
    let g = sample_grid();
    let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
        .unwrap();
    // Every short prefix in the header region, then a sweep over the body
    // (step 3 keeps the test fast without losing coverage classes).
    for cut in (0..64.min(bytes.len())).chain((64..bytes.len()).step_by(3)) {
        assert!(
            cliz::decompress(&bytes[..cut], None).is_err(),
            "prefix of {cut} bytes decoded successfully"
        );
    }
}

#[test]
fn single_byte_corruption_detected_or_bound_preserved() {
    // Flipping one byte may still decode (e.g. inside literal values), but
    // must never panic. When it decodes, dims must match.
    let g = sample_grid();
    let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
        .unwrap();
    let mut corrupted = 0usize;
    for pos in (0..bytes.len()).step_by(7) {
        let mut b = bytes.clone();
        b[pos] ^= 0x5A;
        match cliz::decompress(&b, None) {
            Err(_) => corrupted += 1,
            Ok(out) => assert_eq!(out.shape().dims(), &[24, 32]),
        }
    }
    assert!(corrupted > 0, "no corruption ever detected");
}

#[test]
fn cross_format_decoding_rejected() {
    let g = sample_grid();
    let cliz_bytes =
        cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2)).unwrap();
    let sz3_bytes = SzInterp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();
    let zfp_bytes = Zfp.compress(&g, None, ErrorBound::Abs(1e-3)).unwrap();

    assert!(cliz::decompress(&sz3_bytes, None).is_err());
    assert!(cliz::decompress(&zfp_bytes, None).is_err());
    assert!(SzInterp.decompress(&cliz_bytes, None).is_err());
    assert!(Zfp.decompress(&cliz_bytes, None).is_err());
    assert!(Sperr.decompress(&cliz_bytes, None).is_err());
    assert!(Qoz.decompress(&sz3_bytes, None).is_err());
}

#[test]
fn empty_and_tiny_inputs_rejected() {
    assert!(cliz::decompress(&[], None).is_err());
    assert!(cliz::decompress(&[0x43], None).is_err());
    assert!(cliz::decompress(b"CLIZ", None).is_err());
}

#[test]
fn mask_shape_mismatch_rejected() {
    let g = sample_grid();
    let mut flags = vec![true; g.len()];
    flags[0] = false;
    let mask = cliz::grid::MaskMap::from_flags(g.shape().clone(), flags);
    let bytes =
        cliz::compress(&g, Some(&mask), ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
            .unwrap();
    // Right mask works.
    assert!(cliz::decompress(&bytes, Some(&mask)).is_ok());
    // Missing or wrong-shape mask is refused.
    assert!(cliz::decompress(&bytes, None).is_err());
    let wrong = cliz::grid::MaskMap::all_valid(Shape::new(&[32, 24]));
    assert!(cliz::decompress(&bytes, Some(&wrong)).is_err());
}

#[test]
fn future_version_rejected() {
    let g = sample_grid();
    let mut bytes =
        cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
            .unwrap();
    bytes[4] = 99; // version byte
    match cliz::decompress(&bytes, None) {
        Err(cliz::ClizError::UnsupportedVersion(99)) => {}
        other => panic!("expected version error, got {other:?}"),
    }
}

#[test]
fn max_rank_grids_roundtrip() {
    // 5-D and 6-D are legal (MAX_DIMS = 6): exercise the full pipeline there.
    for dims in [vec![3usize, 4, 2, 5, 3], vec![2usize, 3, 2, 2, 3, 4]] {
        let n: usize = dims.iter().product();
        let g = Grid::from_vec(
            Shape::new(&dims),
            (0..n).map(|i| (i as f32 * 0.37).sin() * 3.0).collect(),
        );
        let cfg = PipelineConfig::default_for(dims.len());
        let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &cfg).unwrap();
        let out = cliz::decompress(&bytes, None).unwrap();
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9, "rank {}", dims.len());
        }
    }
}

#[test]
fn nan_values_survive_without_breaking_neighbours() {
    // Unmasked NaNs must escape to literals, reconstruct bit-exact, and the
    // finite points must still honour the bound (NaN poisons its neighbours'
    // predictions into escapes, never into bound violations).
    let mut g = sample_grid();
    for &i in &[5usize, 100, 371, 640] {
        g.as_mut_slice()[i] = f32::NAN;
    }
    let bytes =
        cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
            .unwrap();
    let out = cliz::decompress(&bytes, None).unwrap();
    for (i, (&a, &b)) in g.as_slice().iter().zip(out.as_slice()).enumerate() {
        if a.is_nan() {
            assert!(b.is_nan(), "NaN lost at {i}");
        } else {
            assert!((a as f64 - b as f64).abs() <= 1e-3 * (1.0 + 1e-9), "at {i}");
        }
    }
}

#[test]
fn compressed_stream_is_deterministic() {
    let g = sample_grid();
    let cfg = PipelineConfig::default_for(2);
    let a = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &cfg).unwrap();
    let b = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &cfg).unwrap();
    assert_eq!(a, b, "compression must be deterministic");
}

#[test]
fn chunked_container_corruption_never_panics() {
    let g = sample_grid();
    let bytes = cliz::compress_chunked(
        &g,
        None,
        ErrorBound::Abs(1e-3),
        &PipelineConfig::default_for(2),
        6,
    )
    .unwrap();

    // Truncation sweep: dense over the header, strided over the body.
    for cut in (0..64.min(bytes.len())).chain((64..bytes.len()).step_by(3)) {
        assert!(
            cliz::decompress_chunked(&bytes[..cut], None).is_err(),
            "chunked prefix of {cut} bytes decoded successfully"
        );
    }

    // Bit-flip sweep: decoding may survive (flips inside literals) but must
    // never panic, and surviving output must keep the advertised shape.
    // Random chunk access goes through a separate offset-table path, so
    // exercise both.
    let mut corrupted = 0usize;
    for pos in (0..bytes.len()).step_by(5) {
        let mut b = bytes.clone();
        b[pos] ^= 0x81;
        match cliz::decompress_chunked(&b, None) {
            Err(_) => corrupted += 1,
            Ok(out) => assert_eq!(out.shape().dims(), &[24, 32]),
        }
        let _ = cliz::decompress_chunk(&b, 1, None);
    }
    assert!(corrupted > 0, "no chunked corruption ever detected");
}

#[test]
fn stream_container_corruption_never_panics() {
    // Build a 3-slab stream of [8, 32] records.
    let g = sample_grid();
    let mut sink: Vec<u8> = Vec::new();
    {
        let mut w =
            ChunkedWriter::new(&mut sink, &[32], 1e-3, PipelineConfig::default_for(2)).unwrap();
        for s in 0..3 {
            let rows = g.as_slice()[s * 8 * 32..(s + 1) * 8 * 32].to_vec();
            let slab = Grid::from_vec(Shape::new(&[8, 32]), rows);
            w.write_slab(&slab, None).unwrap();
        }
        w.finish().unwrap();
    }
    let reread = ChunkedReader::open(&sink).unwrap().read_all(|_| None).unwrap();
    assert_eq!(reread.shape().dims(), &[24, 32]);

    // Truncation sweep. Opening may succeed on some prefixes (the trailer
    // parse is length-relative), but every slab read must then fail cleanly.
    for cut in (0..sink.len()).step_by(3) {
        if let Ok(r) = ChunkedReader::open(&sink[..cut]) {
            for i in 0..r.slabs() {
                let _ = r.read_slab(i, None);
            }
            let _ = r.read_all(|_| None);
        }
    }

    // Bit-flip sweep over header, frames, and trailer index.
    let mut corrupted = 0usize;
    for pos in (0..sink.len()).step_by(5) {
        let mut b = sink.clone();
        b[pos] ^= 0xA5;
        match ChunkedReader::open(&b) {
            Err(_) => corrupted += 1,
            Ok(r) => {
                for i in 0..r.slabs() {
                    if r.read_slab(i, None).is_err() {
                        corrupted += 1;
                    }
                }
                let _ = r.read_all(|_| None);
            }
        }
    }
    assert!(corrupted > 0, "no stream corruption ever detected");
}

/// Deterministic xorshift64* PRNG for the mutation sweeps: fixed seeds keep
/// failures reproducible (print the seed on assert) without any rand dep.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Applies `count` random byte mutations (XOR, overwrite, or zero) in place.
fn mutate(bytes: &mut [u8], rng: &mut XorShift, count: usize) {
    if bytes.is_empty() {
        return;
    }
    for _ in 0..count {
        let pos = (rng.next() as usize) % bytes.len();
        match rng.next() % 3 {
            0 => bytes[pos] ^= (rng.next() >> 32) as u8 | 1,
            1 => bytes[pos] = (rng.next() >> 24) as u8,
            _ => bytes[pos] = 0,
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_plain_container() {
    // Multi-byte mutations hit interacting-field corruption (length vs
    // payload, table vs stream) that the single-byte sweep cannot reach.
    let g = sample_grid();
    let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
        .unwrap();
    for seed in 1..=200u64 {
        let mut rng = XorShift(seed);
        let mut b = bytes.clone();
        let count = 1 + (rng.next() as usize) % 8;
        mutate(&mut b, &mut rng, count);
        // Must return (Ok with the right shape, or Err) — never panic.
        if let Ok(out) = cliz::decompress(&b, None) {
            assert_eq!(out.shape().dims(), &[24, 32], "seed {seed}");
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_chunked_container() {
    let g = sample_grid();
    let bytes = cliz::compress_chunked(
        &g,
        None,
        ErrorBound::Abs(1e-3),
        &PipelineConfig::default_for(2),
        6,
    )
    .unwrap();
    for seed in 1..=150u64 {
        let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9));
        let mut b = bytes.clone();
        let count = 1 + (rng.next() as usize) % 8;
        mutate(&mut b, &mut rng, count);
        if let Ok(out) = cliz::decompress_chunked(&b, None) {
            assert_eq!(out.shape().dims(), &[24, 32], "seed {seed}");
        }
        // Random slab access takes the offset-table path: sweep it too.
        for chunk in 0..4 {
            let _ = cliz::decompress_chunk(&b, chunk, None);
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_stream_container() {
    let g = sample_grid();
    let mut sink: Vec<u8> = Vec::new();
    {
        let mut w =
            ChunkedWriter::new(&mut sink, &[32], 1e-3, PipelineConfig::default_for(2)).unwrap();
        for s in 0..3 {
            let rows = g.as_slice()[s * 8 * 32..(s + 1) * 8 * 32].to_vec();
            let slab = Grid::from_vec(Shape::new(&[8, 32]), rows);
            w.write_slab(&slab, None).unwrap();
        }
        w.finish().unwrap();
    }
    for seed in 1..=150u64 {
        let mut rng = XorShift(seed.wrapping_mul(0xDEAD_BEEF) | 1);
        let mut b = sink.clone();
        let count = 1 + (rng.next() as usize) % 8;
        mutate(&mut b, &mut rng, count);
        if let Ok(r) = ChunkedReader::open(&b) {
            for i in 0..r.slabs() {
                let _ = r.read_slab(i, None);
            }
            let _ = r.read_all(|_| None);
        }
    }
}

/// Compressed streams for every baseline codec, for the shared-header sweeps.
fn baseline_streams(g: &Grid<f32>) -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("sz3", SzInterp.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
        ("sz2", Sz2Lorenzo.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
        ("qoz", Qoz.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
        ("zfp", Zfp.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
        ("sperr", Sperr.compress(g, None, ErrorBound::Abs(1e-3)).unwrap()),
    ]
}

fn baseline_decompress(name: &str, bytes: &[u8]) -> Result<Grid<f32>, cliz::BaselineError> {
    match name {
        "sz3" => SzInterp.decompress(bytes, None),
        "sz2" => Sz2Lorenzo.decompress(bytes, None),
        "qoz" => Qoz.decompress(bytes, None),
        "zfp" => Zfp.decompress(bytes, None),
        _ => Sperr.decompress(bytes, None),
    }
}

/// Bytes of the shared `magic, rank, dims` prefix every baseline container
/// starts with ([`cliz_baselines::header::read_header`]): u32 + u8 + 2×u64
/// for the rank-2 sample grid.
const BASELINE_HEADER_LEN: usize = 4 + 1 + 2 * 8;

#[test]
fn seeded_mutation_sweep_on_baseline_codecs() {
    // The baseline decoders share the hardened header reader; hold them to
    // the same no-panic bar as the CLIZ containers.
    let g = sample_grid();
    for seed in 1..=60u64 {
        for (name, bytes) in baseline_streams(&g) {
            let mut rng = XorShift(seed.wrapping_mul(0x0123_4567_89AB_CDEF) | 1);
            let mut b = bytes.clone();
            let count = 1 + (rng.next() as usize) % 6;
            mutate(&mut b, &mut rng, count);
            let _ = baseline_decompress(name, &b);
        }
    }
}

#[test]
fn baseline_header_bitflip_sweep_detected_or_survived() {
    // Dense single-byte sweep confined to the shared header prefix: every
    // position, four flip patterns, all five codecs. A flipped magic, rank,
    // or dim must come back as a typed error — and whatever still decodes
    // must never panic on the way.
    let g = sample_grid();
    let mut rejected = 0usize;
    for (name, bytes) in baseline_streams(&g) {
        for pos in 0..BASELINE_HEADER_LEN.min(bytes.len()) {
            for flip in [0x01u8, 0x5A, 0x80, 0xFF] {
                let mut b = bytes.clone();
                b[pos] ^= flip;
                if baseline_decompress(name, &b).is_err() {
                    rejected += 1;
                }
            }
        }
    }
    assert!(rejected > 0, "no baseline header corruption ever detected");
}

#[test]
fn baseline_header_truncation_rejected() {
    // No prefix shorter than the header can parse: magic, rank, and every
    // dim read must fail with Truncated, not panic or fabricate a grid.
    let g = sample_grid();
    for (name, bytes) in baseline_streams(&g) {
        for cut in 0..BASELINE_HEADER_LEN.min(bytes.len()) {
            assert!(
                baseline_decompress(name, &bytes[..cut]).is_err(),
                "{name}: header prefix of {cut} bytes decoded successfully"
            );
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_baseline_headers() {
    // Multi-byte mutations confined to the header region reach the
    // interacting-field cases (rank vs dim count, dims vs payload length)
    // that the single-byte sweep cannot.
    let g = sample_grid();
    for (name, bytes) in baseline_streams(&g) {
        for seed in 1..=80u64 {
            let mut rng = XorShift(seed.wrapping_mul(0xA24B_AED4_963E_E407) | 1);
            let mut b = bytes.clone();
            let header_len = BASELINE_HEADER_LEN.min(b.len());
            let count = 1 + (rng.next() as usize) % 4;
            mutate(&mut b[..header_len], &mut rng, count);
            let _ = baseline_decompress(name, &b);
        }
    }
}

/// A small CZS chunk store over the sample grid (4 chunks of 6 rows).
fn sample_store() -> Vec<u8> {
    let ds = cliz::store::Dataset::new("T", sample_grid(), None);
    cliz::store::pack_store(
        &ds,
        ErrorBound::Abs(1e-3),
        &PipelineConfig::default_for(2),
        6,
        1,
    )
    .unwrap()
}

#[test]
fn store_truncation_sweep_never_panics() {
    // The store format ends with an exact-length payload, so *every* prefix
    // must be rejected at open — densely over the metadata/index region,
    // strided over the payload.
    let bytes = sample_store();
    for cut in (0..160.min(bytes.len())).chain((160..bytes.len()).step_by(3)) {
        assert!(
            cliz::store::ChunkStoreReader::from_bytes(bytes[..cut].to_vec()).is_err(),
            "store prefix of {cut} bytes opened successfully"
        );
    }
}

#[test]
fn store_index_bitflip_sweep_detected_or_survived() {
    // Dense single-byte sweep over the metadata + index region (corrupt
    // offsets, lens, checksums, geometry). Every flip must surface as a
    // StoreError — at open via the index invariants and the CLZC offset
    // cross-check, or at read via the per-chunk CRC — never as a panic or
    // as silently wrong-shaped output.
    let bytes = sample_store();
    let mut rejected = 0usize;
    for pos in 0..200.min(bytes.len()) {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut b = bytes.clone();
            b[pos] ^= flip;
            match cliz::store::ChunkStoreReader::from_bytes(b) {
                Err(_) => rejected += 1,
                Ok(reader) => match reader.read_all() {
                    Err(_) => rejected += 1,
                    Ok(out) => assert_eq!(out.shape().dims(), &[24, 32], "pos {pos}"),
                },
            }
        }
    }
    assert!(rejected > 0, "no store index corruption ever detected");
}

#[test]
fn store_checksum_catches_payload_corruption_before_codec() {
    // A flip inside a chunk body leaves the index intact, so the store
    // opens — but the CRC must refuse the chunk before the codec sees it.
    let bytes = sample_store();
    let mut b = bytes.clone();
    let pos = bytes.len() - 40; // deep inside the last chunk's payload
    b[pos] ^= 0x10;
    let reader = cliz::store::ChunkStoreReader::from_bytes(b).unwrap();
    assert!(matches!(
        reader.read_all(),
        Err(cliz::store::StoreError::Checksum { .. })
    ));
    // Chunks before the corrupted one still decode.
    assert!(reader.read_region(&[0..6, 0..32]).is_ok());
}

#[test]
fn seeded_multibyte_mutation_sweep_on_store() {
    // Multi-byte mutations across the whole file hit interacting-field
    // corruption (index vs offset table, geometry vs entry count, CRC vs
    // payload). Open and every read path must return, never panic or
    // over-allocate.
    let bytes = sample_store();
    for seed in 1..=150u64 {
        let mut rng = XorShift(seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1);
        let mut b = bytes.clone();
        let count = 1 + (rng.next() as usize) % 8;
        mutate(&mut b, &mut rng, count);
        if let Ok(reader) = cliz::store::ChunkStoreReader::from_bytes(b) {
            if let Ok(out) = reader.read_all() {
                assert_eq!(out.shape().dims(), &[24, 32], "seed {seed}");
            }
            // Region and single-chunk paths take different guards: sweep both.
            let _ = reader.read_region(&[7..13, 4..20]);
            let _ = reader.chunk(3);
        }
    }
}

#[test]
fn seeded_multibyte_mutation_sweep_on_store_index_region() {
    // Mutations confined to the metadata/index region concentrate pressure
    // on the length-provenance guards (counts, extents, offsets, lens).
    let bytes = sample_store();
    for seed in 1..=120u64 {
        let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let mut b = bytes.clone();
        let head = 200.min(b.len());
        let count = 1 + (rng.next() as usize) % 6;
        mutate(&mut b[..head], &mut rng, count);
        if let Ok(reader) = cliz::store::ChunkStoreReader::from_bytes(b) {
            if let Ok(out) = reader.read_all() {
                assert_eq!(out.shape().dims(), &[24, 32], "seed {seed}");
            }
        }
    }
}

#[test]
fn decompression_is_idempotent_across_calls() {
    let g = sample_grid();
    let bytes = cliz::compress(&g, None, ErrorBound::Abs(1e-3), &PipelineConfig::default_for(2))
        .unwrap();
    let a = cliz::decompress(&bytes, None).unwrap();
    let b = cliz::decompress(&bytes, None).unwrap();
    assert_eq!(a, b);
}
