//! Directional integration tests for CliZ's four optimizations: each feature
//! must pay off on data exhibiting the property it targets (the qualitative
//! content of the paper's Tables V/VI).

use cliz::grid::FusionSpec;
use cliz::prelude::*;

fn ratio(bytes: &[u8], original_points: usize) -> f64 {
    (original_points * 4) as f64 / bytes.len() as f64
}

#[test]
fn mask_awareness_pays_on_masked_data() {
    let d = cliz::data::ssh(&[40, 32, 60], 17);
    let bound = ErrorBound::Rel(1e-3);
    let on = PipelineConfig::default_for(3);
    let off = PipelineConfig {
        use_mask: false,
        ..on.clone()
    };
    let b_on = cliz::compress(&d.data, d.mask.as_ref(), bound, &on).unwrap();
    let b_off = cliz::compress(&d.data, d.mask.as_ref(), bound, &off).unwrap();
    assert!(
        b_on.len() < b_off.len(),
        "mask on {} !< off {}",
        b_on.len(),
        b_off.len()
    );
}

#[test]
fn periodicity_pays_on_annual_cycle_data() {
    let d = cliz::data::ssh(&[32, 24, 240], 23);
    let bound = ErrorBound::Rel(1e-3);
    let plain = PipelineConfig::default_for(3);
    let periodic = PipelineConfig {
        periodicity: Periodicity::Extract {
            time_axis: 2,
            period: 12,
        },
        ..plain.clone()
    };
    let b_plain = cliz::compress(&d.data, d.mask.as_ref(), bound, &plain).unwrap();
    let b_per = cliz::compress(&d.data, d.mask.as_ref(), bound, &periodic).unwrap();
    assert!(
        b_per.len() < b_plain.len(),
        "periodic {} !< plain {}",
        b_per.len(),
        b_plain.len()
    );
}

#[test]
fn permutation_matters_on_anisotropic_data() {
    // CESM-T-like: rough height axis first. Prediction should improve when
    // the rough axis is fused/permuted away from the fine-grained role.
    let d = cliz::data::cesm_t(&[12, 64, 96], 31);
    let bound = ErrorBound::Rel(1e-3);
    let mut ratios = Vec::new();
    for perm in [vec![0usize, 1, 2], vec![1, 2, 0], vec![2, 0, 1]] {
        let cfg = PipelineConfig {
            permutation: perm.clone(),
            ..PipelineConfig::default_for(3)
        };
        let b = cliz::compress(&d.data, None, bound, &cfg).unwrap();
        ratios.push((perm, ratio(&b, d.data.len())));
    }
    let best = ratios
        .iter()
        .map(|r| r.1)
        .fold(f64::NEG_INFINITY, f64::max);
    let worst = ratios.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    assert!(
        best / worst > 1.02,
        "permutation should matter on anisotropic data: {ratios:?}"
    );
}

#[test]
fn fusion_changes_results_and_roundtrips() {
    let d = cliz::data::cesm_t(&[8, 40, 64], 37);
    let bound = ErrorBound::Rel(1e-3);
    for fusion in FusionSpec::candidates(3) {
        let cfg = PipelineConfig {
            fusion,
            ..PipelineConfig::default_for(3)
        };
        let b = cliz::compress(&d.data, None, bound, &cfg).unwrap();
        let out = cliz::decompress(&b, None).unwrap();
        let max_err = cliz::metrics::max_abs_error(d.data.as_slice(), out.as_slice(), None);
        let (mn, mx) = d.data.finite_min_max().unwrap();
        assert!(max_err <= 1e-3 * (mx - mn) as f64 * (1.0 + 1e-9));
    }
}

#[test]
fn classification_pays_on_topographic_bin_patterns() {
    // Build a field whose quantization bins shift per horizontal position:
    // per-position linear drift along the slice axis with position-dependent
    // slope — the shifting pattern of Sec. VI-E.
    let shape = cliz::grid::Shape::new(&[64, 24, 24]);
    let eb = 1e-3f64;
    let g = cliz::grid::Grid::from_fn(shape, |c| {
        let pos = c[1] * 24 + c[2];
        // Slope multiples of the quantization step so bins are biased.
        let slope = ((pos % 5) as f64 - 2.0) * 2.0 * eb;
        (c[0] as f64 * slope + (pos as f64 * 0.37).sin() * 0.01) as f32
    });
    let base = PipelineConfig {
        classification: false,
        ..PipelineConfig::default_for(3)
    };
    let with = PipelineConfig {
        classification: true,
        ..base.clone()
    };
    let b0 = cliz::compress(&g, None, ErrorBound::Abs(eb), &base).unwrap();
    let b1 = cliz::compress(&g, None, ErrorBound::Abs(eb), &with).unwrap();
    assert!(
        b1.len() < b0.len(),
        "classification {} !< plain {}",
        b1.len(),
        b0.len()
    );
    // And it must round-trip.
    let out = cliz::decompress(&b1, None).unwrap();
    let max_err = cliz::metrics::max_abs_error(g.as_slice(), out.as_slice(), None);
    assert!(max_err <= eb * (1.0 + 1e-9));
}

#[test]
fn autotuned_pipeline_not_worse_than_default() {
    let d = cliz::data::ssh(&[48, 40, 120], 41);
    let bound = ErrorBound::Rel(1e-3);
    let tuned = cliz::autotune(
        &d.data,
        d.mask.as_ref(),
        TuneSpec {
            sampling_rate: 0.05,
            time_axis: d.time_axis,
            bound,
        },
    )
    .unwrap();
    let b_tuned = cliz::compress(&d.data, d.mask.as_ref(), bound, &tuned.best).unwrap();
    let b_default = cliz::compress(
        &d.data,
        d.mask.as_ref(),
        bound,
        &PipelineConfig::default_for(3),
    )
    .unwrap();
    // Sampling noise allows small regressions; large ones mean the tuner is
    // broken.
    assert!(
        (b_tuned.len() as f64) < 1.15 * b_default.len() as f64,
        "tuned {} much worse than default {}",
        b_tuned.len(),
        b_default.len()
    );
}

#[test]
fn tuned_config_transfers_across_fields_of_same_model() {
    // Paper claim: one offline tuning per climate model, reused across
    // fields/snapshots. Tune on one member, apply to another.
    let train = cliz::data::ssh(&[40, 32, 120], 50);
    let bound = ErrorBound::Rel(1e-3);
    let tuned = cliz::autotune(
        &train.data,
        train.mask.as_ref(),
        TuneSpec {
            sampling_rate: 0.05,
            time_axis: train.time_axis,
            bound,
        },
    )
    .unwrap();

    let other = cliz::data::ssh(&[40, 32, 120], 51);
    let b = cliz::compress(&other.data, other.mask.as_ref(), bound, &tuned.best).unwrap();
    let out = cliz::decompress(&b, other.mask.as_ref()).unwrap();
    let psnr = cliz::metrics::psnr(other.data.as_slice(), out.as_slice(), other.mask.as_ref());
    assert!(psnr > 55.0, "transferred config gives poor quality: {psnr}");
}
