//! Random-access chunk store guarantees, end to end through the facade:
//!
//! * the decode counter equals the computed chunk-intersection set for
//!   interior, edge, and full-grid regions, on unmasked, masked, and
//!   periodic datasets — non-intersecting chunks are never decoded;
//! * concurrent readers get byte-identical results to serial reads, and a
//!   cold chunk raced by many threads is decoded exactly once;
//! * the decoded-chunk LRU cache respects its byte budget under eviction
//!   pressure.

use cliz::prelude::*;
use cliz::store::{pack_store, ChunkStoreReader, Dataset};
use cliz::grid::Shape;
use std::ops::Range;

fn smooth(dims: &[usize]) -> Grid<f32> {
    Grid::from_fn(Shape::new(dims), |c| {
        let mut v = 0.0f64;
        for (k, &x) in c.iter().enumerate() {
            v += ((x as f64) * 0.19 * (k + 1) as f64).sin() * 5.0;
        }
        v as f32
    })
}

fn pack(ds: &Dataset, chunk: usize) -> Vec<u8> {
    let cfg = PipelineConfig::default_for(ds.data.shape().ndim());
    pack_store(ds, ErrorBound::Abs(1e-3), &cfg, chunk, 1).unwrap()
}

/// Number of chunks a row range intersects, computed independently of the
/// store's own geometry code.
fn expected_chunks(rows: &Range<usize>, chunk: usize, dim0: usize) -> u64 {
    if rows.start >= rows.end || rows.start >= dim0 {
        return 0;
    }
    let first = rows.start / chunk;
    let last = (rows.end.min(dim0) - 1) / chunk;
    (last - first + 1) as u64
}

/// Region kinds to sweep per dataset: interior within one chunk, interior
/// spanning a boundary, leading edge, trailing edge (ragged tail), full.
fn region_kinds(dim0: usize, chunk: usize) -> Vec<Range<usize>> {
    vec![
        chunk + 1..chunk + 2,            // interior, single chunk
        chunk - 1..2 * chunk + 1,        // interior, spans two boundaries
        0..chunk.min(dim0),              // leading edge
        dim0 - (chunk / 2).max(1)..dim0, // trailing edge (tail chunk)
        0..dim0,                         // full grid
    ]
}

fn check_decode_counts(ds: &Dataset, chunk: usize) {
    let bytes = pack(ds, chunk);
    let dims = ds.data.shape().dims().to_vec();
    let reference = ChunkStoreReader::from_bytes(bytes.clone())
        .unwrap()
        .read_all()
        .unwrap();
    for rows in region_kinds(dims[0], chunk) {
        let reader = ChunkStoreReader::from_bytes(bytes.clone()).unwrap();
        let mut ranges: Vec<Range<usize>> = vec![rows.clone()];
        for &d in &dims[1..] {
            ranges.push(0..d);
        }
        let region = reader.read_region(&ranges).unwrap();
        assert_eq!(
            reader.decode_count(),
            expected_chunks(&rows, chunk, dims[0]),
            "decode count for rows {rows:?} (chunk {chunk}, dim0 {})",
            dims[0]
        );
        let mut origin = vec![rows.start];
        origin.extend(std::iter::repeat(0).take(dims.len() - 1));
        let mut size = vec![rows.len()];
        size.extend_from_slice(&dims[1..]);
        assert_eq!(
            reference.block(&origin, &size),
            region,
            "region values for rows {rows:?}"
        );
    }
}

#[test]
fn decode_counter_equals_intersection_unmasked() {
    let ds = Dataset::new("T", smooth(&[40, 16, 8]), None);
    check_decode_counts(&ds, 6);
}

#[test]
fn decode_counter_equals_intersection_masked() {
    // SSH carries a land mask; the mask rides inside the store, so region
    // reads need no side channel and masked chunks still count correctly.
    let field = cliz::data::ssh(&[40, 16, 8], 3);
    assert!(field.mask.is_some(), "ssh generator should mask land");
    let ds = Dataset::new("SSH", field.data, field.mask);
    check_decode_counts(&ds, 6);
}

#[test]
fn decode_counter_equals_intersection_periodic() {
    // A strongly periodic field (period 12 along axis 0), the regime the
    // paper's periodic predictor targets.
    let g = Grid::from_fn(Shape::new(&[36, 20]), |c| {
        ((c[0] % 12) as f32 * 0.5236).sin() * 8.0 + c[1] as f32 * 0.1
    });
    let ds = Dataset::new("PERIODIC", g, None);
    check_decode_counts(&ds, 5);
}

#[test]
fn narrow_trailing_ranges_decode_only_intersected_chunks() {
    // Sub-selecting trailing dims exercises the block-copy assembly path;
    // the chunk set is still driven only by the row range.
    let ds = Dataset::new("T", smooth(&[30, 12, 10]), None);
    let bytes = pack(&ds, 7);
    let reader = ChunkStoreReader::from_bytes(bytes.clone()).unwrap();
    let region = reader.read_region(&[8..16, 3..9, 2..5]).unwrap();
    assert_eq!(reader.decode_count(), 2); // rows 8..16 hit chunks 1 and 2
    let reference = ChunkStoreReader::from_bytes(bytes)
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(reference.block(&[8, 3, 2], &[8, 6, 3]), region);
}

#[test]
fn concurrent_same_region_no_decode_stampede() {
    let ds = Dataset::new("T", smooth(&[32, 20, 12]), None);
    let bytes = pack(&ds, 4);
    let serial = {
        let r = ChunkStoreReader::from_bytes(bytes.clone()).unwrap();
        r.read_region(&[9..12, 0..20, 0..12]).unwrap()
    };
    let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reader = &reader;
                s.spawn(move || reader.read_region(&[9..12, 0..20, 0..12]).unwrap())
            })
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            assert_eq!(serial, got, "concurrent read diverged from serial");
        }
    });
    // Rows 9..12 live in chunk 2 only; 8 racing threads, one decode.
    assert_eq!(reader.decode_count(), 1, "decode stampede");
    let stats = reader.stats();
    assert_eq!(stats.cache.hits + stats.cache.misses, 8);
    assert!(stats.cache.hits >= 1 || stats.cache.misses == 8);
}

#[test]
fn concurrent_overlapping_regions_byte_identical_to_serial() {
    let ds = Dataset::new("T", smooth(&[48, 16, 10]), None);
    let bytes = pack(&ds, 6); // 8 chunks
    let regions: Vec<[Range<usize>; 3]> = vec![
        [0..10, 0..16, 0..10],
        [5..20, 2..14, 1..9],
        [10..30, 0..16, 0..10],
        [18..48, 4..12, 0..10],
        [0..48, 0..16, 0..10],
        [40..48, 0..16, 5..10],
        [11..13, 7..9, 3..4],
        [23..25, 0..16, 0..10],
    ];
    // Serial ground truth, one fresh reader per region.
    let serial: Vec<Grid<f32>> = regions
        .iter()
        .map(|r| {
            ChunkStoreReader::from_bytes(bytes.clone())
                .unwrap()
                .read_region(r.as_slice())
                .unwrap()
        })
        .collect();
    let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
    std::thread::scope(|s| {
        let handles: Vec<_> = regions
            .iter()
            .map(|r| {
                let reader = &reader;
                s.spawn(move || reader.read_region(r.as_slice()).unwrap())
            })
            .collect();
        for (h, want) in handles.into_iter().zip(&serial) {
            assert_eq!(want, &h.join().unwrap());
        }
    });
    // The union of all row ranges covers every chunk exactly once.
    assert_eq!(reader.decode_count(), 8);
}

#[test]
fn lru_cache_respects_byte_budget_under_pressure() {
    // [48, 10] rows of 10 f32s, chunks of 8 rows: 6 chunks, 320 bytes of
    // decoded data each. Budget two chunks' worth.
    let ds = Dataset::new("T", smooth(&[48, 10]), None);
    let cfg = PipelineConfig::default_for(2);
    let bytes = pack_store(&ds, ErrorBound::Abs(1e-3), &cfg, 8, 1).unwrap();
    let reader = ChunkStoreReader::with_cache_budget(bytes, 640).unwrap();
    for c in 0..6 {
        reader.read_region(&[c * 8..(c + 1) * 8, 0..10]).unwrap();
        let stats = reader.stats();
        assert!(
            stats.cache.resident_bytes <= 640,
            "budget exceeded after chunk {c}: {} bytes",
            stats.cache.resident_bytes
        );
        assert!(stats.cache.resident_entries <= 2);
    }
    let stats = reader.stats();
    assert_eq!(stats.decodes, 6);
    assert!(stats.cache.evictions >= 4, "expected eviction pressure");
    // The most recent chunk is still warm; the first was evicted long ago.
    reader.read_region(&[40..48, 0..10]).unwrap();
    assert_eq!(reader.stats().decodes, 6, "warm chunk re-decoded");
    reader.read_region(&[0..8, 0..10]).unwrap();
    assert_eq!(reader.stats().decodes, 7, "evicted chunk not re-decoded");
}

#[test]
fn masked_store_roundtrips_mask_and_attrs() {
    let field = cliz::data::ssh(&[24, 16, 8], 9);
    let mut ds = Dataset::new("SSH", field.data, field.mask);
    ds.set_attr("units", "m");
    let bytes = pack(&ds, 5);
    let reader = ChunkStoreReader::from_bytes(bytes).unwrap();
    let mask = reader.mask().expect("mask must ride in the store");
    assert_eq!(mask.as_slice(), ds.mask.as_ref().unwrap().as_slice());
    assert!(reader
        .attrs()
        .iter()
        .any(|(k, v)| k == "units" && v == "m"));
    // Full read equals the chunked decompressor driven directly.
    let full = reader.read_all().unwrap();
    assert_eq!(full.shape().dims(), &[24, 16, 8]);
}

#[test]
fn store_read_path_preserves_error_bound() {
    // The |x - x'| <= eb contract must hold through the store surface, not
    // only through decompress(): pack, then read a boundary-spanning region
    // and the full grid, and check every value against the original.
    let eb = 1e-3f32;
    let original = smooth(&[30, 14, 10]);
    let ds = Dataset::new("T", original.clone(), None);
    let bytes = pack(&ds, 7);
    let reader = ChunkStoreReader::from_bytes(bytes).unwrap();

    let region = reader.read_region(&[5..23, 0..14, 0..10]).unwrap();
    let want = original.block(&[5, 0, 0], &[18, 14, 10]);
    for (a, b) in want.as_slice().iter().zip(region.as_slice()) {
        assert!((a - b).abs() <= eb + 1e-6, "region: |{a} - {b}| > {eb}");
    }

    let full = reader.read_all().unwrap();
    for (a, b) in original.as_slice().iter().zip(full.as_slice()) {
        assert!((a - b).abs() <= eb + 1e-6, "full: |{a} - {b}| > {eb}");
    }
}
