//! Determinism and equivalence guarantees of the parallel chunked path and
//! the zero-copy/arena pipeline (the PR's perf work must never change bytes).
//!
//! Three invariants:
//! 1. chunked containers are byte-identical across worker counts (1/2/4),
//!    including masked data, tail slabs, and periodic configs;
//! 2. the optimized pipeline is byte-identical to the frozen allocation
//!    baseline (`compress_alloc_baseline` / `compress_chunked_alloc_baseline`);
//! 3. a `ScratchArena` reused across back-to-back calls is observationally
//!    identical to fresh allocations per call.

use cliz::grid::{Grid, MaskMap, Shape};
use cliz::quant::ErrorBound;
use cliz::{Periodicity, PipelineConfig, ScratchArena};

fn smooth(dims: &[usize]) -> Grid<f32> {
    Grid::from_fn(Shape::new(dims), |c| {
        let mut v = 0.0f64;
        for (k, &x) in c.iter().enumerate() {
            v += ((x as f64) * 0.17 * (k + 1) as f64).sin() * 4.0;
        }
        v as f32
    })
}

fn masked(dims: &[usize]) -> (Grid<f32>, MaskMap) {
    let mut g = smooth(dims);
    let mut valid = vec![true; g.len()];
    for i in 0..g.len() {
        if i % 7 == 0 {
            g.as_mut_slice()[i] = 9.96921e36;
            valid[i] = false;
        }
    }
    let mask = MaskMap::from_flags(g.shape().clone(), valid);
    (g, mask)
}

/// Invariant 1: worker count never changes the container, and the pooled
/// decode never changes the grid. 17 rows with chunk_len 5 forces a 2-row
/// tail slab — the uneven load LPT balancing exists for.
#[test]
fn chunked_bytes_identical_across_threads() {
    let g = smooth(&[17, 14, 10]);
    let cfg = PipelineConfig::default_for(3);
    let eb = ErrorBound::Abs(1e-3);
    let serial = cliz::compress_chunked_with_threads(&g, None, eb, &cfg, 5, 1).unwrap();
    for threads in [2, 4] {
        let par = cliz::compress_chunked_with_threads(&g, None, eb, &cfg, 5, threads).unwrap();
        assert_eq!(serial, par, "container diverged at {threads} threads");
    }
    let reference = cliz::decompress_chunked(&serial, None).unwrap();
    for threads in [1, 2, 4] {
        let out = cliz::decompress_chunked_with_threads(&serial, None, threads).unwrap();
        assert_eq!(out, reference, "decode diverged at {threads} threads");
    }
    // And the default entry points are the same code path.
    assert_eq!(serial, cliz::compress_chunked(&g, None, eb, &cfg, 5).unwrap());
}

#[test]
fn masked_chunked_bytes_identical_across_threads() {
    let (g, mask) = masked(&[13, 12, 8]);
    let cfg = PipelineConfig::default_for(3);
    let eb = ErrorBound::Rel(1e-3);
    let serial =
        cliz::compress_chunked_with_threads(&g, Some(&mask), eb, &cfg, 4, 1).unwrap();
    for threads in [2, 4] {
        let par =
            cliz::compress_chunked_with_threads(&g, Some(&mask), eb, &cfg, 4, threads).unwrap();
        assert_eq!(serial, par, "masked container diverged at {threads} threads");
    }
    let reference = cliz::decompress_chunked_with_threads(&serial, Some(&mask), 1).unwrap();
    for threads in [2, 4] {
        let out =
            cliz::decompress_chunked_with_threads(&serial, Some(&mask), threads).unwrap();
        assert_eq!(out, reference, "masked decode diverged at {threads} threads");
    }
}

/// Periodic configs recurse (template + residual sub-containers) and degrade
/// per-slab when the period doesn't fit — both must stay deterministic
/// across worker counts.
#[test]
fn periodic_chunked_bytes_identical_across_threads() {
    let g = Grid::from_fn(Shape::new(&[26, 18]), |c| {
        let phase = 2.0 * std::f64::consts::PI * (c[0] % 12) as f64 / 12.0;
        (4.0 * phase.sin() + c[1] as f64 * 0.05) as f32
    });
    let cfg = PipelineConfig {
        periodicity: Periodicity::Extract {
            time_axis: 0,
            period: 12,
        },
        ..PipelineConfig::default_for(2)
    };
    let eb = ErrorBound::Abs(1e-3);
    // chunk_len 13 fits the period once; chunk_len 5 forces the degrade path.
    for chunk_len in [13, 5] {
        let serial =
            cliz::compress_chunked_with_threads(&g, None, eb, &cfg, chunk_len, 1).unwrap();
        for threads in [2, 4] {
            let par =
                cliz::compress_chunked_with_threads(&g, None, eb, &cfg, chunk_len, threads)
                    .unwrap();
            assert_eq!(serial, par, "chunk_len {chunk_len}, {threads} threads");
        }
    }
}

/// Invariant 2: the zero-copy pipeline and the frozen allocation baseline
/// produce the same bytes, for plain, masked, and non-identity-permutation
/// configs.
#[test]
fn optimized_pipeline_matches_alloc_baseline() {
    let g = smooth(&[12, 16, 10]);
    let (gm, mask) = masked(&[14, 12]);
    let eb = ErrorBound::Abs(1e-3);

    let id_cfg = PipelineConfig::default_for(3);
    assert_eq!(
        cliz::compress(&g, None, eb, &id_cfg).unwrap(),
        cliz::compress_alloc_baseline(&g, None, eb, &id_cfg).unwrap(),
        "identity permutation diverged"
    );

    let perm_cfg = PipelineConfig {
        permutation: vec![2, 0, 1],
        ..PipelineConfig::default_for(3)
    };
    assert_eq!(
        cliz::compress(&g, None, eb, &perm_cfg).unwrap(),
        cliz::compress_alloc_baseline(&g, None, eb, &perm_cfg).unwrap(),
        "permuted layout diverged"
    );

    let m_cfg = PipelineConfig::default_for(2);
    assert_eq!(
        cliz::compress(&gm, Some(&mask), eb, &m_cfg).unwrap(),
        cliz::compress_alloc_baseline(&gm, Some(&mask), eb, &m_cfg).unwrap(),
        "masked pipeline diverged"
    );

    assert_eq!(
        cliz::compress_chunked(&g, None, eb, &id_cfg, 5).unwrap(),
        cliz::compress_chunked_alloc_baseline(&g, None, eb, &id_cfg, 5).unwrap(),
        "chunked container diverged"
    );
}

/// Invariant 3: reusing one arena across many calls is observationally
/// identical to a fresh arena per call, for both directions, and the arena
/// actually pools buffers between calls.
#[test]
fn arena_reuse_is_observationally_identical() {
    let fields: Vec<Grid<f32>> = vec![
        smooth(&[10, 12, 8]),
        smooth(&[9, 6, 14]),
        smooth(&[16, 5, 5]),
    ];
    let cfg = PipelineConfig::default_for(3);
    let eb = ErrorBound::Abs(1e-3);

    let mut arena = ScratchArena::new();
    for (round, g) in fields.iter().enumerate() {
        let (reused, s1) =
            cliz::compress_with_stats_arena(g, None, eb, &cfg, &mut arena).unwrap();
        let (fresh, s2) = cliz::compress_with_stats(g, None, eb, &cfg).unwrap();
        assert_eq!(reused, fresh, "compress bytes diverged on round {round}");
        assert_eq!(s1, s2, "stats diverged on round {round}");

        let via_arena = cliz::decompress_arena(&reused, None, &mut arena).unwrap();
        let via_fresh = cliz::decompress(&reused, None).unwrap();
        assert_eq!(via_arena, via_fresh, "decode diverged on round {round}");
        if round > 0 {
            let (f32s, u32s) = arena.pooled();
            assert!(
                f32s + u32s > 0,
                "arena never pooled anything — reuse is not happening"
            );
        }
    }

    // Masked round after unmasked rounds: a stale gather buffer must not
    // leak symbols between calls.
    let (gm, mask) = masked(&[11, 13]);
    let cfg2 = PipelineConfig::default_for(2);
    let (reused, _) =
        cliz::compress_with_stats_arena(&gm, Some(&mask), eb, &cfg2, &mut arena).unwrap();
    let (fresh, _) = cliz::compress_with_stats(&gm, Some(&mask), eb, &cfg2).unwrap();
    assert_eq!(reused, fresh, "masked round after reuse diverged");
}
