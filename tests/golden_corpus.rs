//! Golden-file corpus: one committed container per on-disk format, pinned
//! byte-for-byte.
//!
//! Two invariants, both load-bearing for a stacked format ecosystem:
//!
//! 1. **Encoder stability** — compressing the fixed sample input today must
//!    reproduce the committed bytes exactly. Any drift in a header field,
//!    field order, or entropy coding shows up as a failed byte comparison,
//!    not as a silent compatibility break three releases later.
//! 2. **Decoder compatibility** — the committed bytes (i.e. files written by
//!    *past* builds) must still decode, within the recorded error bound.
//!
//! The CZF1 CLI wrapper has its own golden fixture in
//! `crates/cli/tests/cli_workflow.rs` (the cli crate is not a dependency of
//! this facade-level suite). To regenerate after an intentional format
//! change, run the `#[ignore]`d `regenerate_golden_corpus` test and commit
//! the rewritten files together with a note in `docs/FORMATS.md`.

use cliz::grid::{Grid, MaskMap, Shape};
use cliz::prelude::*;
use cliz::ChunkedWriter;

/// The canonical sample field (same formula as the robustness suite).
fn sample_grid() -> Grid<f32> {
    Grid::from_fn(Shape::new(&[24, 32]), |c| {
        ((c[0] as f32 * 0.23).sin() + (c[1] as f32 * 0.31).cos()) * 7.0
    })
}

const EB: f64 = 1e-3;

/// Fixed payload for the ZLT1 lossless fixture: mixed compressible and
/// near-random bytes so both coder modes stay exercised.
fn zlt1_payload() -> Vec<u8> {
    let mut p = Vec::new();
    for i in 0..4096u32 {
        p.push((i % 251) as u8);
        p.push((i.wrapping_mul(2654435761) >> 24) as u8);
    }
    p.extend_from_slice(&[0u8; 512]);
    p
}

fn sample_dataset() -> cliz::store::Dataset {
    let mut ds = cliz::store::Dataset::new("T2m", sample_grid(), None);
    ds.set_attr("units", "K");
    ds
}

/// Builds every fixture container from the fixed sample input, in the order
/// they are committed. Names double as `tests/golden/<name>` file names.
fn build_corpus() -> Vec<(&'static str, Vec<u8>)> {
    let g = sample_grid();
    let cfg = PipelineConfig::default_for(2);

    let mut stream: Vec<u8> = Vec::new();
    {
        let mut w = ChunkedWriter::new(&mut stream, &[32], EB, cfg.clone()).unwrap();
        for s in 0..3 {
            let rows = g.as_slice()[s * 8 * 32..(s + 1) * 8 * 32].to_vec();
            w.write_slab(&Grid::from_vec(Shape::new(&[8, 32]), rows), None)
                .unwrap();
        }
        w.finish().unwrap();
    }

    let ds = sample_dataset();
    let store = cliz::store::pack_store(&ds, ErrorBound::Abs(EB), &cfg, 6, 1).unwrap();
    let mut caf: Vec<u8> = Vec::new();
    cliz::store::write_caf(&mut caf, &ds).unwrap();

    vec![
        (
            "cliz_plain.bin",
            cliz::compress(&g, None, ErrorBound::Abs(EB), &cfg).unwrap(),
        ),
        (
            "clzc_chunked.bin",
            cliz::compress_chunked(&g, None, ErrorBound::Abs(EB), &cfg, 6).unwrap(),
        ),
        ("clzs_stream.bin", stream),
        ("czs1_store.bin", store),
        ("caf1_archive.bin", caf),
        ("zlt1_lossless.bin", cliz::lossless::compress(&zlt1_payload())),
        (
            "szl1_sz3.bin",
            SzInterp.compress(&g, None, ErrorBound::Abs(EB)).unwrap(),
        ),
        (
            "sz21_sz2.bin",
            Sz2Lorenzo.compress(&g, None, ErrorBound::Abs(EB)).unwrap(),
        ),
        (
            "zfp1_zfp.bin",
            Zfp.compress(&g, None, ErrorBound::Abs(EB)).unwrap(),
        ),
        (
            "qoz1_qoz.bin",
            Qoz.compress(&g, None, ErrorBound::Abs(EB)).unwrap(),
        ),
        (
            "spr1_sperr.bin",
            Sperr.compress(&g, None, ErrorBound::Abs(EB)).unwrap(),
        ),
    ]
}

/// The committed bytes for each corpus entry, embedded at compile time so
/// the suite needs no runtime path discovery.
fn committed(name: &str) -> &'static [u8] {
    match name {
        "cliz_plain.bin" => include_bytes!("golden/cliz_plain.bin"),
        "clzc_chunked.bin" => include_bytes!("golden/clzc_chunked.bin"),
        "clzs_stream.bin" => include_bytes!("golden/clzs_stream.bin"),
        "czs1_store.bin" => include_bytes!("golden/czs1_store.bin"),
        "caf1_archive.bin" => include_bytes!("golden/caf1_archive.bin"),
        "zlt1_lossless.bin" => include_bytes!("golden/zlt1_lossless.bin"),
        "szl1_sz3.bin" => include_bytes!("golden/szl1_sz3.bin"),
        "sz21_sz2.bin" => include_bytes!("golden/sz21_sz2.bin"),
        "zfp1_zfp.bin" => include_bytes!("golden/zfp1_zfp.bin"),
        "qoz1_qoz.bin" => include_bytes!("golden/qoz1_qoz.bin"),
        "spr1_sperr.bin" => include_bytes!("golden/spr1_sperr.bin"),
        other => panic!("no committed fixture named {other}"),
    }
}

#[test]
fn encoders_reproduce_committed_bytes_exactly() {
    for (name, fresh) in build_corpus() {
        let want = committed(name);
        assert_eq!(
            fresh.len(),
            want.len(),
            "{name}: container length drifted (run regenerate_golden_corpus \
             only for an intentional format change)"
        );
        if let Some(pos) = fresh.iter().zip(want).position(|(a, b)| a != b) {
            panic!("{name}: byte {pos} drifted ({:#04x} != {:#04x})", fresh[pos], want[pos]);
        }
    }
}

/// Max |a-b| over a decoded grid against the sample field.
fn max_err(decoded: &Grid<f32>) -> f64 {
    let g = sample_grid();
    g.as_slice()
        .iter()
        .zip(decoded.as_slice())
        .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
        .fold(0.0, f64::max)
}

#[test]
fn committed_containers_decode_within_bound() {
    let tol = EB * (1.0 + 1e-9);

    let plain = cliz::decompress(committed("cliz_plain.bin"), None).unwrap();
    assert_eq!(plain.shape().dims(), &[24, 32]);
    assert!(max_err(&plain) <= tol);

    let chunked = cliz::decompress_chunked(committed("clzc_chunked.bin"), None).unwrap();
    assert!(max_err(&chunked) <= tol);

    let stream = cliz::ChunkedReader::open(committed("clzs_stream.bin"))
        .unwrap()
        .read_all(|_| None)
        .unwrap();
    assert_eq!(stream.shape().dims(), &[24, 32]);
    assert!(max_err(&stream) <= tol);

    let reader =
        cliz::store::ChunkStoreReader::from_bytes(committed("czs1_store.bin").to_vec()).unwrap();
    let store = reader.read_all().unwrap();
    assert!(max_err(&store) <= tol);

    let ds = cliz::store::read_caf(&mut committed("caf1_archive.bin")).unwrap();
    assert_eq!(ds.name, "T2m");
    assert_eq!(ds.attr("units"), Some("K"));
    assert_eq!(ds.data.as_slice(), sample_grid().as_slice());

    assert_eq!(
        cliz::lossless::decompress(committed("zlt1_lossless.bin")).unwrap(),
        zlt1_payload()
    );

    let baselines: [(&str, Grid<f32>); 5] = [
        ("szl1_sz3.bin", SzInterp.decompress(committed("szl1_sz3.bin"), None).unwrap()),
        ("sz21_sz2.bin", Sz2Lorenzo.decompress(committed("sz21_sz2.bin"), None).unwrap()),
        ("zfp1_zfp.bin", Zfp.decompress(committed("zfp1_zfp.bin"), None).unwrap()),
        ("qoz1_qoz.bin", Qoz.decompress(committed("qoz1_qoz.bin"), None).unwrap()),
        ("spr1_sperr.bin", Sperr.decompress(committed("spr1_sperr.bin"), None).unwrap()),
    ];
    for (name, out) in &baselines {
        assert_eq!(out.shape().dims(), &[24, 32], "{name}");
        assert!(max_err(out) <= tol, "{name}: bound violated");
    }
}

#[test]
fn committed_corpus_has_registry_magics() {
    // Each fixture must open with its registered little-endian magic — a
    // cheap tripwire against committing a file under the wrong name.
    let magics: [(&str, u32); 11] = [
        ("cliz_plain.bin", 0x434C_495A),
        ("clzc_chunked.bin", 0x434C_5A43),
        ("clzs_stream.bin", 0x434C_5A53),
        ("czs1_store.bin", 0x3153_5A43),
        ("caf1_archive.bin", 0x4341_4631),
        ("zlt1_lossless.bin", 0x5A4C_5431),
        ("szl1_sz3.bin", 0x535A_4C31),
        ("sz21_sz2.bin", 0x535A_3231),
        ("zfp1_zfp.bin", 0x5A46_5031),
        ("qoz1_qoz.bin", 0x514F_5A31),
        ("spr1_sperr.bin", 0x5350_5231),
    ];
    for (name, magic) in magics {
        let b = committed(name);
        assert!(b.len() > 5, "{name}: implausibly small fixture");
        let got = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        assert_eq!(got, magic, "{name}: wrong leading magic");
        assert_eq!(b[4], 1, "{name}: unexpected version byte");
    }
}

/// Rewrites `tests/golden/` from the current encoders. Run only after an
/// intentional format change:
/// `t_golden regenerate_golden_corpus --ignored` (or `cargo test -- --ignored`).
#[test]
#[ignore]
fn regenerate_golden_corpus() {
    let dir = std::path::Path::new(file!())
        .parent()
        .expect("test file has a parent dir")
        .join("golden");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in build_corpus() {
        std::fs::write(dir.join(name), &bytes).unwrap();
        println!("wrote {name} ({} bytes)", bytes.len());
    }
}

/// The masked-compression path has no golden fixture (mask packing is
/// covered structurally elsewhere); keep a decode smoke test so the corpus
/// suite still exercises it end to end.
#[test]
fn masked_roundtrip_smoke() {
    let g = sample_grid();
    let mut flags = vec![true; g.len()];
    flags[17] = false;
    let mask = MaskMap::from_flags(g.shape().clone(), flags);
    let bytes =
        cliz::compress(&g, Some(&mask), ErrorBound::Abs(EB), &PipelineConfig::default_for(2))
            .unwrap();
    let out = cliz::decompress(&bytes, Some(&mask)).unwrap();
    assert_eq!(out.shape().dims(), &[24, 32]);
}
